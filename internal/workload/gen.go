package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/x86"
)

// Profile is a workload generator configuration. Each application in the
// paper's Table 1 maps to one Profile; the knobs shape the micro-op
// stream's statistical properties (redundancy density, branch bias,
// dependence chain length, footprint, aliasing) so the optimizer and
// timing model see the same phenomena the paper reports for that
// application.
type Profile struct {
	Name  string
	Class string // "SPECint", "Business" or "Content"
	Seed  int64

	// XInsts is the x86 instruction budget per captured trace (scaled
	// down from the paper's 50-300M to laptop scale).
	XInsts int
	// Traces is the number of distinct hot-spot traces (Table 1 column 4).
	Traces int

	// Funcs is the number of distinct hot functions (code footprint).
	Funcs int
	// BodyStmts is the number of generated statements per loop body.
	BodyStmts int
	// LoopTrip is the inner loop trip count.
	LoopTrip int

	// RedLoads in [0,1] controls the density of spill/reload and
	// repeated-load idioms (store-forwarding and redundant-load food:
	// drives the optimizer's load removal).
	RedLoads float64
	// RedALU in [0,1] controls the density of recomputed ALU expressions
	// (CSE food that removes plain micro-ops, not loads).
	RedALU float64
	// ChainLen controls the length of constant-offset dependence chains
	// (reassociation food; also raises tree height without optimization).
	ChainLen int
	// InnerBias in [0,1] is the taken probability of data-driven
	// conditional branches. High bias -> long frames, high coverage.
	InnerBias float64
	// HardBranches in [0,1] is the density of near-50/50 branches
	// (misprediction and frame-termination pressure).
	HardBranches float64
	// AliasRate in [0,1] is the probability that a pointer store aliases
	// a stack local at runtime (unsafe-store abort pressure; the Excel
	// phenomenon).
	AliasRate float64
	// LeafCalls in [0,1] is the density of leaf procedure calls inside
	// loop bodies (cross-call store forwarding; the Figure 2 pattern).
	LeafCalls float64
	// IndirectCalls in [0,1] is the density of indirect calls in the
	// outer loop (frame terminators unless constant-propagated).
	IndirectCalls float64
	// WorkingSet is the global data footprint in bytes.
	WorkingSet int
}

const (
	biasEntries = 4096
	biasMask    = biasEntries - 1
	// biasScale is the value range of the driver arrays; thresholds have
	// 1/biasScale resolution (0.01%), fine enough to express the ~99.95%
	// biased branches that long atomic frames require.
	biasScale = 10000
	// hardBase holds the uncorrelated random array driving hard branches
	// and aliasing events; the main bias array has run structure so branch
	// history is learnable, as in real programs.
	hardBase = BiasBase + 4*biasEntries
	// Global bookkeeping slots live above both arrays.
	slotArea = hardBase + 4*biasEntries
)

// generator carries the state of one program generation.
type generator struct {
	p   Profile
	rng *rand.Rand
	b   *Builder

	nextSlot  uint32 // next free global bookkeeping slot
	wsMask    uint32
	threshold int32 // inner-bias compare threshold (percent)

	// leafSites counts leaf-call statements; each call site gets its own
	// leaf procedure so return targets stay stable (hot code behaves this
	// way after inlining and code layout).
	leafSites int
	// accCursor rotates the statement accumulator register.
	accCursor int
	// carry holds fractional statement quotas across function bodies.
	carry [numKinds]float64
}

// slot allocates a 4-byte global bookkeeping slot.
func (g *generator) slot() uint32 {
	a := g.nextSlot
	g.nextSlot += 4
	return a
}

// Generate assembles the program for one trace of the profile. The trace
// index perturbs the seed so multi-trace applications get distinct hot
// spots, like the paper's per-hot-spot trace files.
func Generate(p Profile, traceIdx int) (*Program, error) {
	g := &generator{
		p:        p,
		rng:      rand.New(rand.NewSource(p.Seed + int64(traceIdx)*7919)),
		b:        NewBuilder(CodeBase),
		nextSlot: slotArea,
	}
	ws := p.WorkingSet
	if ws < 256 {
		ws = 256
	}
	// Round the working set to a power of two for cheap index wrapping.
	g.wsMask = 1
	for int(g.wsMask) < ws/4 {
		g.wsMask <<= 1
	}
	g.wsMask--
	g.threshold = int32(p.InnerBias * biasScale)

	prog, err := g.emit(traceIdx)
	if err != nil {
		return nil, fmt.Errorf("workload %s trace %d: %w", p.Name, traceIdx, err)
	}
	return prog, nil
}

func (g *generator) emit(traceIdx int) (*Program, error) {
	b := g.b

	// Entry: jump over the function bodies to main.
	b.Jmp("main")

	for i := 0; i < g.p.Funcs; i++ {
		g.hotFunc(i)
	}
	g.mainLoop(traceIdx)
	// Leaf procedures are emitted last, one per call site, so each leaf's
	// return target is a single stable address.
	for i := 0; i < g.leafSites; i++ {
		g.leafFunc(i)
	}

	code, err := b.Finalize()
	if err != nil {
		return nil, err
	}

	prog := &Program{
		Name:  fmt.Sprintf("%s.%d", g.p.Name, traceIdx),
		Base:  CodeBase,
		Code:  code,
		Entry: CodeBase,
	}
	prog.Data = append(prog.Data, g.biasSegment(), g.tableSegment())
	return prog, nil
}

// biasSegment generates the branch-bias driver arrays. The main array
// (BiasBase) has run structure — stretches of similar values — so that
// data-driven branch outcomes exhibit the local correlation real programs
// have and the global-history predictor can train. The hard array
// (hardBase) is uncorrelated, driving genuinely unpredictable branches
// and sporadic aliasing events.
func (g *generator) biasSegment() Segment {
	rng := rand.New(rand.NewSource(g.p.Seed ^ 0x5eed))
	bytes := make([]byte, 4*2*biasEntries)
	put := func(idx int, v uint32) {
		bytes[4*idx] = byte(v)
		bytes[4*idx+1] = byte(v >> 8)
	}
	i := 0
	for i < biasEntries {
		run := 8 + rng.Intn(48)
		v := uint32(rng.Intn(biasScale))
		for k := 0; k < run && i < biasEntries; k++ {
			put(i, v)
			i++
		}
	}
	for j := 0; j < biasEntries; j++ {
		put(biasEntries+j, uint32(rng.Intn(biasScale)))
	}
	return Segment{Addr: BiasBase, Bytes: bytes}
}

// tableSegment builds the indirect-call target table from resolved labels.
func (g *generator) tableSegment() Segment {
	n := g.p.Funcs
	bytes := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		addr, ok := g.b.LabelAddr(fmt.Sprintf("f%d", i))
		if !ok {
			continue // Finalize will have failed already
		}
		bytes[4*i] = byte(addr)
		bytes[4*i+1] = byte(addr >> 8)
		bytes[4*i+2] = byte(addr >> 16)
		bytes[4*i+3] = byte(addr >> 24)
	}
	return Segment{Addr: TableBase, Bytes: bytes}
}

// advanceBias emits the bias-array read idiom, leaving the drawn value
// (0..99) in EDX. EBX is the bias cursor.
func (g *generator) advanceBias() { g.advance(int32(BiasBase)) }

// advanceHard draws from the uncorrelated array instead.
func (g *generator) advanceHard() { g.advance(int32(hardBase)) }

func (g *generator) advance(base int32) {
	b := g.b
	b.Mov(x86.RegOp(x86.EDX), x86.MemIdx(x86.RegNone, x86.EBX, 4, base))
	b.I(x86.Inst{Op: x86.OpINC, Cond: x86.CondNone, Dst: x86.RegOp(x86.EBX)})
	b.Alu(x86.OpAND, x86.RegOp(x86.EBX), x86.ImmOp(biasMask))
}

// leafFunc emits a small two-argument leaf procedure modeled on the
// paper's Figure 2 fragment from crafty.
func (g *generator) leafFunc(i int) {
	b := g.b
	b.Label(fmt.Sprintf("leaf%d", i))
	b.Push(x86.RegOp(x86.EBP))
	b.Push(x86.RegOp(x86.EBX))
	b.Mov(x86.RegOp(x86.ECX), x86.Mem(x86.ESP, 0x0C))
	b.Mov(x86.RegOp(x86.EBX), x86.Mem(x86.ESP, 0x10))
	b.Alu(x86.OpXOR, x86.RegOp(x86.EAX), x86.RegOp(x86.EAX))
	b.Mov(x86.RegOp(x86.EDX), x86.RegOp(x86.ECX))
	b.Alu(x86.OpOR, x86.RegOp(x86.EDX), x86.RegOp(x86.EBX))
	skip := fmt.Sprintf("leaf%d.out", i)
	b.Jcc(x86.CondE, skip) // typically taken: args are usually (0, 0)
	// Rare path: a little work.
	b.Alu(x86.OpADD, x86.RegOp(x86.EAX), x86.RegOp(x86.ECX))
	b.Alu(x86.OpADD, x86.RegOp(x86.EAX), x86.RegOp(x86.EBX))
	b.I(x86.Inst{Op: x86.OpSHL, Cond: x86.CondNone, Dst: x86.RegOp(x86.EAX), Src: x86.ImmOp(1)})
	b.Label(skip)
	b.Pop(x86.RegOp(x86.EBX))
	b.Pop(x86.RegOp(x86.EBP))
	b.Ret()
}

// Local variable offsets available to body statements: [EBP-4..EBP-0x3C].
const (
	frameSize = 0x40
	numLocals = 14
)

func (g *generator) localOff(i int) int32 { return -4 * int32(1+i%numLocals) }

// hotFunc emits one hot function: prologue, an inner loop whose body is a
// seeded mix of statement templates, and epilogue.
//
// Register conventions inside the loop: ESI = loop counter, EBX = bias
// cursor, EDI = working-set index, EBP = frame pointer, EAX/ECX/EDX
// scratch (clobbered by calls).
func (g *generator) hotFunc(i int) {
	b := g.b
	name := fmt.Sprintf("f%d", i)
	b.Label(name)
	// Prologue.
	b.Push(x86.RegOp(x86.EBP))
	b.Mov(x86.RegOp(x86.EBP), x86.RegOp(x86.ESP))
	b.Alu(x86.OpSUB, x86.RegOp(x86.ESP), x86.ImmOp(frameSize))
	b.Push(x86.RegOp(x86.EBX))
	b.Push(x86.RegOp(x86.ESI))
	b.Push(x86.RegOp(x86.EDI))

	biasSlot := g.slot()
	wsSlot := g.slot()
	b.Mov(x86.RegOp(x86.EBX), x86.MemAbs(biasSlot))
	b.Mov(x86.RegOp(x86.EDI), x86.MemAbs(wsSlot))
	// Seed a couple of locals from the argument and a global.
	b.Mov(x86.RegOp(x86.EAX), x86.Mem(x86.EBP, 8))
	b.Mov(x86.Mem(x86.EBP, g.localOff(0)), x86.RegOp(x86.EAX))
	b.Mov(x86.RegOp(x86.ECX), x86.MemIdx(x86.RegNone, x86.EDI, 4, int32(DataBase)))
	b.Mov(x86.Mem(x86.EBP, g.localOff(1)), x86.RegOp(x86.ECX))

	b.Mov(x86.RegOp(x86.ESI), x86.ImmOp(int32(g.p.LoopTrip)))
	loop := name + ".loop"
	b.Label(loop)

	for s, kind := range g.plan() {
		g.statement(i, s, kind)
	}

	// Advance the working-set index and close the loop.
	b.I(x86.Inst{Op: x86.OpINC, Cond: x86.CondNone, Dst: x86.RegOp(x86.EDI)})
	b.Alu(x86.OpAND, x86.RegOp(x86.EDI), x86.ImmOp(int32(g.wsMask)))
	b.I(x86.Inst{Op: x86.OpDEC, Cond: x86.CondNone, Dst: x86.RegOp(x86.ESI)})
	b.Jcc(x86.CondNE, loop)

	// Epilogue.
	b.Mov(x86.MemAbs(biasSlot), x86.RegOp(x86.EBX))
	b.Mov(x86.MemAbs(wsSlot), x86.RegOp(x86.EDI))
	b.Pop(x86.RegOp(x86.EDI))
	b.Pop(x86.RegOp(x86.ESI))
	b.Pop(x86.RegOp(x86.EBX))
	b.Mov(x86.RegOp(x86.ESP), x86.RegOp(x86.EBP))
	b.Pop(x86.RegOp(x86.EBP))
	b.Ret()
}

// stmtKind enumerates the body-statement templates.
type stmtKind int

const (
	kSpill stmtKind = iota
	kRepeat
	kRecompute
	kLeaf
	kAlias
	kHard
	kChain
	kArray
	kTwoAddr
	kBiased
	numKinds
)

// plan builds the statement-kind list for one function body using
// stratified quotas (with carry across functions, so small shares still
// materialize), then shuffles the order. Stratification keeps each
// profile's template composition tight, which the calibration against
// Table 3 depends on.
func (g *generator) plan() []stmtKind {
	n := g.p.BodyStmts
	shares := [numKinds]float64{
		kSpill:     g.p.RedLoads * 0.20,
		kRepeat:    g.p.RedLoads * 0.15,
		kRecompute: g.p.RedALU * 0.40,
		kLeaf:      g.p.LeafCalls * 0.3,
		kAlias:     g.p.AliasRate * 0.25,
		kHard:      g.p.HardBranches * 0.35,
	}
	kinds := make([]stmtKind, 0, n)
	for k := stmtKind(0); k < kBiased+1; k++ {
		if shares[k] == 0 {
			continue
		}
		want := shares[k]*float64(n) + g.carry[k]
		cnt := int(want)
		g.carry[k] = want - float64(cnt)
		for i := 0; i < cnt && len(kinds) < n; i++ {
			kinds = append(kinds, k)
		}
	}
	// Fill the remainder with the baseline mix (array updates dominate,
	// as loads/stores do in compiled code).
	fill := []stmtKind{kArray, kChain, kArray, kTwoAddr, kBiased}
	for i := 0; len(kinds) < n; i++ {
		kinds = append(kinds, fill[i%len(fill)])
	}
	g.rng.Shuffle(len(kinds), func(i, j int) { kinds[i], kinds[j] = kinds[j], kinds[i] })
	return kinds
}

// statement emits one body statement of the planned kind.
func (g *generator) statement(fn, stmt int, kind stmtKind) {
	switch kind {
	case kSpill:
		g.stmtSpillReload(stmt)
	case kRepeat:
		g.stmtRepeatedLoad(stmt)
	case kRecompute:
		g.stmtRecompute()
	case kLeaf:
		g.stmtLeafCall()
	case kAlias:
		g.stmtAliasStore(stmt)
	case kHard:
		g.stmtHardBranch(fn, stmt)
	case kChain:
		g.stmtChain()
	case kArray:
		g.stmtArrayUpdate()
	case kTwoAddr:
		g.stmtTwoAddress()
	case kBiased:
		g.stmtBiasedBranch(fn, stmt)
	}
}

// stmtRecompute: the same ALU expression computed twice through the
// two-address idiom — micro-op CSE food that removes no loads.
func (g *generator) stmtRecompute() {
	b := g.b
	acc := g.acc()
	other := g.acc()
	k := int32(1 + g.rng.Intn(15))
	b.Mov(x86.RegOp(acc), x86.RegOp(x86.ESI))
	b.Alu(x86.OpADD, x86.RegOp(acc), x86.RegOp(x86.EBX))
	b.I(x86.Inst{Op: x86.OpSHL, Cond: x86.CondNone, Dst: x86.RegOp(acc), Src: x86.ImmOp(2)})
	b.Alu(x86.OpAND, x86.RegOp(acc), x86.ImmOp(k))
	// Recompute the same subexpression for another consumer.
	b.Mov(x86.RegOp(other), x86.RegOp(x86.ESI))
	b.Alu(x86.OpADD, x86.RegOp(other), x86.RegOp(x86.EBX))
	b.Alu(x86.OpXOR, x86.RegOp(acc), x86.RegOp(other))
}

// stmtSpillReload: store a scratch value to a local, compute, reload it —
// a store-forwarding opportunity.
func (g *generator) stmtSpillReload(stmt int) {
	b := g.b
	acc := g.acc()
	other := g.acc()
	off := g.localOff(g.rng.Intn(numLocals))
	b.Mov(x86.Mem(x86.EBP, off), x86.RegOp(acc))
	b.Alu(x86.OpADD, x86.RegOp(other), x86.ImmOp(int32(g.rng.Intn(64))))
	b.Mov(x86.RegOp(acc), x86.Mem(x86.EBP, off)) // forwarded load
	b.Alu(x86.OpADD, x86.RegOp(other), x86.RegOp(acc))
}

// stmtRepeatedLoad: load the same local twice with intervening work — a
// redundant-load (CSE) opportunity.
func (g *generator) stmtRepeatedLoad(stmt int) {
	b := g.b
	acc := g.acc()
	other := g.acc()
	off := g.localOff(g.rng.Intn(numLocals))
	b.Mov(x86.RegOp(acc), x86.Mem(x86.EBP, off))
	b.Alu(x86.OpADD, x86.RegOp(acc), x86.ImmOp(int32(1+g.rng.Intn(16))))
	b.Mov(x86.RegOp(other), x86.Mem(x86.EBP, off)) // redundant load
	b.Alu(x86.OpSUB, x86.RegOp(acc), x86.RegOp(other))
}

// stmtLeafCall: the Figure 2 pattern — push two arguments, call a leaf,
// clean up the stack. Arguments are usually zero so the leaf's branch is
// biased. Each site calls its own leaf so the return target is stable.
func (g *generator) stmtLeafCall() {
	b := g.b
	idx := g.leafSites
	g.leafSites++
	b.Alu(x86.OpXOR, x86.RegOp(x86.EAX), x86.RegOp(x86.EAX))
	b.Push(x86.RegOp(x86.EAX))
	b.Push(x86.RegOp(x86.EAX))
	b.Call(fmt.Sprintf("leaf%d", idx))
	b.Alu(x86.OpADD, x86.RegOp(x86.ESP), x86.ImmOp(8))
}

// stmtAliasStore: store through a pointer that usually targets a global
// scratch word but sometimes aliases a stack local — the unsafe-store
// hazard for speculative memory optimization.
func (g *generator) stmtAliasStore(stmt int) {
	b := g.b
	off := g.localOff(g.rng.Intn(numLocals))
	scratch := DataBase + uint32(4*(64+g.rng.Intn(32)))
	aliasThresh := int32(g.p.AliasRate * biasScale)
	b.Mov(x86.Mem(x86.EBP, off), x86.RegOp(x86.ECX)) // local store (SF candidate)
	g.advanceHard()
	b.Alu(x86.OpCMP, x86.RegOp(x86.EDX), x86.ImmOp(aliasThresh))
	b.Lea(x86.EAX, x86.Mem(x86.EBP, off)) // alias target
	b.Lea(x86.ECX, x86.MemAbs(scratch))   // common target
	b.I(x86.Inst{Op: x86.OpCMOV, Cond: x86.CondGE, Dst: x86.RegOp(x86.EAX), Src: x86.RegOp(x86.ECX)})
	b.Mov(x86.Mem(x86.EAX, 0), x86.RegOp(x86.EDX))   // the potentially aliasing store
	b.Mov(x86.RegOp(x86.ECX), x86.Mem(x86.EBP, off)) // load the optimizer may speculate on
}

// stmtHardBranch: a near-50/50 data-driven branch (misprediction and
// frame-termination pressure).
func (g *generator) stmtHardBranch(fn, stmt int) {
	b := g.b
	g.advanceHard()
	b.Alu(x86.OpCMP, x86.RegOp(x86.EDX), x86.ImmOp(biasScale/2))
	label := fmt.Sprintf("f%d.h%d", fn, stmt)
	b.Jcc(x86.CondL, label)
	b.Alu(x86.OpADD, x86.RegOp(x86.EAX), x86.ImmOp(3))
	b.Alu(x86.OpXOR, x86.RegOp(x86.EAX), x86.RegOp(x86.EDX))
	b.Label(label)
	b.Alu(x86.OpADD, x86.RegOp(x86.ECX), x86.RegOp(x86.EAX))
}

// stmtBiasedBranch: a conditional with the profile's inner bias; the
// common path falls through so frame construction asserts past it.
func (g *generator) stmtBiasedBranch(fn, stmt int) {
	b := g.b
	g.advanceBias()
	b.Alu(x86.OpCMP, x86.RegOp(x86.EDX), x86.ImmOp(g.threshold))
	label := fmt.Sprintf("f%d.b%d", fn, stmt)
	// Taken with probability (1 - InnerBias): the rare path is skipped code.
	b.Jcc(x86.CondGE, label)
	b.Alu(x86.OpADD, x86.RegOp(x86.EAX), x86.ImmOp(1))
	b.Label(label)
	b.Alu(x86.OpADD, x86.RegOp(x86.ECX), x86.ImmOp(2))
}

// stmtChain: a constant-offset dependence chain — reassociation food and
// tree height.
func (g *generator) stmtChain() {
	b := g.b
	acc := g.acc()
	n := g.p.ChainLen
	if n < 2 {
		n = 2
	}
	for k := 0; k < n; k++ {
		b.Alu(x86.OpADD, x86.RegOp(acc), x86.ImmOp(int32(1+g.rng.Intn(8))))
	}
}

// stmtArrayUpdate: read-modify-write of a working-set element. Each site
// uses its own static offset so sites are independent dataflow chains.
func (g *generator) stmtArrayUpdate() {
	b := g.b
	acc := g.acc()
	disp := int32(DataBase) + 4*int32(g.rng.Intn(256))
	b.Mov(x86.RegOp(acc), x86.MemIdx(x86.RegNone, x86.EDI, 4, disp))
	b.Alu(x86.OpADD, x86.RegOp(acc), x86.ImmOp(int32(1+g.rng.Intn(7))))
	b.Mov(x86.MemIdx(x86.RegNone, x86.EDI, 4, disp), x86.RegOp(acc))
}

// acc rotates the accumulator register across statements so independent
// statements form parallel dependence chains (compiler-scheduled code
// does the same).
func (g *generator) acc() x86.Reg {
	regs := [3]x86.Reg{x86.EAX, x86.ECX, x86.EDX}
	g.accCursor++
	return regs[g.accCursor%3]
}

// stmtTwoAddress: the two-address workaround from the paper's running
// example — MOV then OR standing in for a three-operand OR.
func (g *generator) stmtTwoAddress() {
	b := g.b
	acc := g.acc()
	src := g.acc()
	b.Mov(x86.RegOp(acc), x86.RegOp(src))
	b.Alu(x86.OpOR, x86.RegOp(acc), x86.RegOp(x86.EBX))
	b.Alu(x86.OpAND, x86.RegOp(acc), x86.ImmOp(0xFFFF))
}

// mainLoop emits the driver: each outer iteration calls a rotation of the
// hot functions (directly for SPEC-like profiles, partly through an
// indirect table when IndirectCalls is set) until the instruction budget
// cuts the trace.
func (g *generator) mainLoop(traceIdx int) {
	b := g.b
	b.Label("main")
	b.Mov(x86.RegOp(x86.ESI), x86.ImmOp(1<<30)) // effectively infinite
	b.Label("main.loop")

	callsPerIter := g.p.Funcs
	if callsPerIter > 6 {
		callsPerIter = 6
	}
	for c := 0; c < callsPerIter; c++ {
		if g.p.IndirectCalls > 0 && g.rng.Float64() < g.p.IndirectCalls {
			// Indirect call: rotate through the table with ESI.
			b.Mov(x86.RegOp(x86.EAX), x86.RegOp(x86.ESI))
			b.Alu(x86.OpADD, x86.RegOp(x86.EAX), x86.ImmOp(int32(c)))
			// Cheap modulus: AND with a power-of-two mask, clamped by table
			// size via a conditional reset.
			mask := int32(1)
			for int(mask) < g.p.Funcs {
				mask <<= 1
			}
			mask--
			b.Alu(x86.OpAND, x86.RegOp(x86.EAX), x86.ImmOp(mask))
			b.Alu(x86.OpCMP, x86.RegOp(x86.EAX), x86.ImmOp(int32(g.p.Funcs)))
			skip := fmt.Sprintf("main.i%d.%d", traceIdx, c)
			b.Jcc(x86.CondL, skip)
			b.Alu(x86.OpXOR, x86.RegOp(x86.EAX), x86.RegOp(x86.EAX))
			b.Label(skip)
			b.Mov(x86.RegOp(x86.ECX), x86.MemIdx(x86.RegNone, x86.EAX, 4, int32(TableBase)))
			b.Push(x86.ImmOp(int32(c)))
			b.I(x86.Inst{Op: x86.OpCALL, Cond: x86.CondNone, Dst: x86.RegOp(x86.ECX)})
			b.Alu(x86.OpADD, x86.RegOp(x86.ESP), x86.ImmOp(4))
		} else {
			fi := (traceIdx*3 + c) % g.p.Funcs
			b.Push(x86.ImmOp(int32(c)))
			b.Call(fmt.Sprintf("f%d", fi))
			b.Alu(x86.OpADD, x86.RegOp(x86.ESP), x86.ImmOp(4))
		}
	}
	b.I(x86.Inst{Op: x86.OpDEC, Cond: x86.CondNone, Dst: x86.RegOp(x86.ESI)})
	b.Jcc(x86.CondNE, "main.loop")
	b.Hlt()
}
