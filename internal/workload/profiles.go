package workload

import "fmt"

// Profiles is the reproduction's workload set, one generator profile per
// application in the paper's Table 1. Instruction budgets are scaled down
// from the paper's 50-300M x86 instructions to laptop scale; the Traces
// counts match the table. Knob settings are calibrated so each profile's
// optimization yield and coverage approximate the per-application numbers
// in Table 3 and Figure 6 (see EXPERIMENTS.md).
var Profiles = []Profile{
	// SPECint 2000 (one 50M-instruction trace each in the paper).
	{
		Name: "bzip2", Class: "SPECint", Seed: 101, XInsts: specInsts, Traces: 1,
		Funcs: 3, BodyStmts: 10, LoopTrip: 2000,
		RedLoads: 0.45, RedALU: 0.15, ChainLen: 2, InnerBias: 0.9995, HardBranches: 0.06,
		AliasRate: 0, LeafCalls: 0.05, IndirectCalls: 0, WorkingSet: 1 << 14,
	},
	{
		Name: "crafty", Class: "SPECint", Seed: 102, XInsts: specInsts, Traces: 1,
		Funcs: 6, BodyStmts: 12, LoopTrip: 12,
		RedLoads: 0.05, RedALU: 0.08, ChainLen: 3, InnerBias: 0.995, HardBranches: 0.28,
		AliasRate: 0, LeafCalls: 0.15, IndirectCalls: 0, WorkingSet: 1 << 15,
	},
	{
		Name: "eon", Class: "SPECint", Seed: 103, XInsts: specInsts, Traces: 1,
		Funcs: 8, BodyStmts: 12, LoopTrip: 800,
		RedLoads: 0.05, RedALU: 0.02, ChainLen: 2, InnerBias: 0.998, HardBranches: 0.03,
		AliasRate: 0, LeafCalls: 0.3, IndirectCalls: 0, WorkingSet: 1 << 14,
	},
	{
		Name: "gzip", Class: "SPECint", Seed: 104, XInsts: specInsts, Traces: 1,
		Funcs: 4, BodyStmts: 10, LoopTrip: 1000,
		RedLoads: 0.3, RedALU: 0.0, ChainLen: 2, InnerBias: 0.996, HardBranches: 0.3,
		AliasRate: 0, LeafCalls: 0.05, IndirectCalls: 0, WorkingSet: 1 << 16,
	},
	{
		Name: "parser", Class: "SPECint", Seed: 105, XInsts: specInsts, Traces: 1,
		Funcs: 8, BodyStmts: 12, LoopTrip: 500,
		RedLoads: 0.03, RedALU: 0.05, ChainLen: 3, InnerBias: 0.999, HardBranches: 0.35,
		AliasRate: 0, LeafCalls: 0.25, IndirectCalls: 0, WorkingSet: 1 << 15,
	},
	{
		Name: "twolf", Class: "SPECint", Seed: 106, XInsts: specInsts, Traces: 1,
		Funcs: 6, BodyStmts: 12, LoopTrip: 600,
		RedLoads: 0.1, RedALU: 0.0, ChainLen: 2, InnerBias: 0.999, HardBranches: 0.14,
		AliasRate: 0, LeafCalls: 0.15, IndirectCalls: 0, WorkingSet: 1 << 16,
	},
	{
		Name: "vortex", Class: "SPECint", Seed: 107, XInsts: specInsts, Traces: 1,
		Funcs: 10, BodyStmts: 12, LoopTrip: 10,
		RedLoads: 0.4, RedALU: 0.08, ChainLen: 3, InnerBias: 0.998, HardBranches: 0.05,
		AliasRate: 0, LeafCalls: 0.5, IndirectCalls: 0, WorkingSet: 1 << 15,
	},

	// Windows desktop applications (Winstone; 2-3 hot-spot traces each).
	{
		Name: "access", Class: "Business", Seed: 201, XInsts: deskInsts, Traces: 2,
		Funcs: 14, BodyStmts: 16, LoopTrip: 8,
		RedLoads: 0.12, RedALU: 0.1, ChainLen: 3, InnerBias: 0.996, HardBranches: 0.12,
		AliasRate: 0.02, LeafCalls: 0.3, IndirectCalls: 0.3, WorkingSet: 1 << 16,
	},
	{
		Name: "dream", Class: "Content", Seed: 202, XInsts: deskInsts, Traces: 2,
		Funcs: 12, BodyStmts: 16, LoopTrip: 12,
		RedLoads: 0.22, RedALU: 0.2, ChainLen: 3, InnerBias: 0.996, HardBranches: 0.10,
		AliasRate: 0.01, LeafCalls: 0.25, IndirectCalls: 0.25, WorkingSet: 1 << 15,
	},
	{
		Name: "excel", Class: "Business", Seed: 203, XInsts: deskInsts, Traces: 3,
		Funcs: 14, BodyStmts: 16, LoopTrip: 8,
		RedLoads: 0.18, RedALU: 0.2, ChainLen: 3, InnerBias: 0.99, HardBranches: 0.08,
		AliasRate: 0.3, LeafCalls: 0.25, IndirectCalls: 0.3, WorkingSet: 1 << 16,
	},
	{
		Name: "lotus", Class: "Business", Seed: 204, XInsts: deskInsts, Traces: 2,
		Funcs: 14, BodyStmts: 14, LoopTrip: 8,
		RedLoads: 0.25, RedALU: 0.12, ChainLen: 3, InnerBias: 0.991, HardBranches: 0.22,
		AliasRate: 0.02, LeafCalls: 0.3, IndirectCalls: 0.35, WorkingSet: 1 << 16,
	},
	{
		Name: "photo", Class: "Content", Seed: 205, XInsts: deskInsts, Traces: 2,
		Funcs: 10, BodyStmts: 14, LoopTrip: 800,
		RedLoads: 0.05, RedALU: 0.0, ChainLen: 3, InnerBias: 0.995, HardBranches: 0.04,
		AliasRate: 0.01, LeafCalls: 0.15, IndirectCalls: 0.2, WorkingSet: 1 << 17,
	},
	{
		Name: "power", Class: "Business", Seed: 206, XInsts: deskInsts, Traces: 3,
		Funcs: 16, BodyStmts: 16, LoopTrip: 8,
		RedLoads: 0.8, RedALU: 0.85, ChainLen: 2, InnerBias: 0.985, HardBranches: 0.5,
		AliasRate: 0.02, LeafCalls: 0.25, IndirectCalls: 0.4, WorkingSet: 1 << 16,
	},
	{
		Name: "sound", Class: "Content", Seed: 207, XInsts: deskInsts, Traces: 3,
		Funcs: 12, BodyStmts: 14, LoopTrip: 10,
		RedLoads: 0.4, RedALU: 0.3, ChainLen: 2, InnerBias: 0.988, HardBranches: 0.35,
		AliasRate: 0.02, LeafCalls: 0.2, IndirectCalls: 0.3, WorkingSet: 1 << 16,
	},
}

// Scaled instruction budgets per trace.
const (
	specInsts = 300_000
	deskInsts = 120_000
)

// ByName returns the profile with the given name.
func ByName(name string) (Profile, error) {
	for _, p := range Profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q", name)
}

// SPECProfiles returns the SPECint subset.
func SPECProfiles() []Profile { return filterClass(true) }

// DesktopProfiles returns the desktop-application subset.
func DesktopProfiles() []Profile { return filterClass(false) }

func filterClass(spec bool) []Profile {
	var out []Profile
	for _, p := range Profiles {
		if (p.Class == "SPECint") == spec {
			out = append(out, p)
		}
	}
	return out
}

// CaptureAll generates and captures every trace of a profile.
func CaptureAll(p Profile) ([]*Tracefile, error) {
	var out []*Tracefile
	for i := 0; i < p.Traces; i++ {
		prog, err := Generate(p, i)
		if err != nil {
			return nil, err
		}
		tr, err := prog.Capture(p.XInsts)
		if err != nil {
			return nil, err
		}
		out = append(out, &Tracefile{Profile: p, Index: i, Trace: tr})
	}
	return out, nil
}
