package workload

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/trace"
)

// Standard memory layout of generated programs.
const (
	CodeBase  = 0x0040_0000
	DataBase  = 0x1000_0000
	StackTop  = 0x0200_0000
	BiasBase  = 0x1800_0000 // branch-bias driver array
	TableBase = 0x1900_0000 // indirect-call target tables
)

// Segment is a pre-initialized data region of a program.
type Segment struct {
	Addr  uint32
	Bytes []byte
}

// Program is an assembled workload: a code image, its entry point, and
// initialized data.
type Program struct {
	Name  string
	Base  uint32
	Code  []byte
	Entry uint32
	Data  []Segment
}

// NewCPU returns a fresh functional CPU with the program loaded and the
// stack pointer initialized.
func (p *Program) NewCPU() *cpu.CPU {
	mem := cpu.NewMemory()
	mem.WriteBytes(p.Base, p.Code)
	for _, s := range p.Data {
		mem.WriteBytes(s.Addr, s.Bytes)
	}
	c := cpu.New(mem)
	c.PC = p.Entry
	c.SetReg(4, StackTop) // ESP
	return c
}

// Tracefile pairs a captured trace with the profile that produced it,
// mirroring the paper's per-hot-spot trace files.
type Tracefile struct {
	Profile Profile
	Index   int
	Trace   *trace.Trace
}

// Capture executes up to maxInsts x86 instructions and returns the
// resulting trace (the reproduction's analogue of a hardware-captured
// "hot spot" trace file).
func (p *Program) Capture(maxInsts int) (*trace.Trace, error) {
	c := p.NewCPU()
	records, err := c.Run(maxInsts)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", p.Name, err)
	}
	return &trace.Trace{
		Name:     p.Name,
		CodeBase: p.Base,
		Code:     p.Code,
		Records:  records,
	}, nil
}
