package workload

import (
	"testing"

	"repro/internal/x86"
)

func TestBuilderLabels(t *testing.T) {
	b := NewBuilder(0x1000)
	b.Mov(x86.RegOp(x86.EAX), x86.ImmOp(0))
	b.Jmp("end")
	b.Label("mid")
	b.Alu(x86.OpADD, x86.RegOp(x86.EAX), x86.ImmOp(1))
	b.Label("end")
	b.Hlt()
	code, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	// Decode the JMP and check it targets "end".
	pos := 5 // after MOV EAX, imm32
	in, err := x86.Decode(code[pos:])
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != x86.OpJMP {
		t.Fatalf("expected JMP, got %s", in)
	}
	endAddr, _ := b.LabelAddr("end")
	if got := in.TargetPC(0x1000 + uint32(pos)); got != endAddr {
		t.Errorf("JMP target = %#x, want %#x", got, endAddr)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(0)
	b.Jmp("nowhere")
	if _, err := b.Finalize(); err == nil {
		t.Error("undefined label not reported")
	}
	b = NewBuilder(0)
	b.Label("x")
	b.Label("x")
	b.Hlt()
	if _, err := b.Finalize(); err == nil {
		t.Error("duplicate label not reported")
	}
}

func TestBuilderBackwardBranch(t *testing.T) {
	b := NewBuilder(0x2000)
	b.Label("loop")
	b.Alu(x86.OpADD, x86.RegOp(x86.EAX), x86.ImmOp(1))
	b.Jcc(x86.CondNE, "loop")
	code, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	in, err := x86.Decode(code[3:]) // after ADD (83 C0 01)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.TargetPC(0x2003); got != 0x2000 {
		t.Errorf("backward target = %#x", got)
	}
}

// TestGenerateAndRun generates each profile's first trace program and runs
// a short capture, checking the program executes cleanly.
func TestGenerateAndRun(t *testing.T) {
	for _, p := range Profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog, err := Generate(p, 0)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := prog.Capture(5000)
			if err != nil {
				t.Fatal(err)
			}
			if len(tr.Records) != 5000 {
				t.Fatalf("captured %d records, want 5000", len(tr.Records))
			}
			s := tr.ComputeStats()
			if s.Loads == 0 || s.Stores == 0 || s.Branches == 0 {
				t.Errorf("degenerate trace: %+v", s)
			}
		})
	}
}

// TestGenerateDeterministic: the same profile and index generate identical
// programs and traces.
func TestGenerateDeterministic(t *testing.T) {
	p := Profiles[0]
	a, err := Generate(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Code) != string(b.Code) {
		t.Error("generation not deterministic")
	}
	ta, err := a.Capture(2000)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := b.Capture(2000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ta.Records {
		if ta.Records[i].PC != tb.Records[i].PC {
			t.Fatalf("trace diverges at record %d", i)
		}
	}
}

// TestTracesDiffer: different trace indices of one application produce
// different hot spots.
func TestTracesDiffer(t *testing.T) {
	p, err := ByName("excel")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Generate(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Code) == string(b.Code) {
		t.Error("trace programs identical across indices")
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("bzip2"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("doom"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestProfileClasses(t *testing.T) {
	if got := len(SPECProfiles()); got != 7 {
		t.Errorf("SPEC profiles = %d, want 7", got)
	}
	if got := len(DesktopProfiles()); got != 7 {
		t.Errorf("desktop profiles = %d, want 7", got)
	}
	total := 0
	for _, p := range Profiles {
		total += p.Traces
	}
	// Paper Table 1: 7 SPEC traces + 17 desktop traces.
	if total != 7+17 {
		t.Errorf("total traces = %d, want 24", total)
	}
}

// TestBranchBias: the biased-branch sites must actually exhibit their
// configured bias in execution.
func TestBranchBias(t *testing.T) {
	p, err := ByName("bzip2") // InnerBias 0.96
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Generate(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := prog.Capture(50_000)
	if err != nil {
		t.Fatal(err)
	}
	// Count per-PC conditional branch outcomes.
	type stat struct{ taken, total int }
	stats := map[uint32]*stat{}
	for i := range tr.Records {
		r := &tr.Records[i]
		bts := tr.InstBytes(r.PC)
		if bts == nil {
			continue
		}
		in, err := x86.Decode(bts)
		if err != nil || in.Op != x86.OpJCC {
			continue
		}
		s := stats[r.PC]
		if s == nil {
			s = &stat{}
			stats[r.PC] = s
		}
		s.total++
		if r.Taken() {
			s.taken++
		}
	}
	if len(stats) == 0 {
		t.Fatal("no conditional branches observed")
	}
	// Most conditional branch sites should be strongly biased one way.
	biased := 0
	for _, s := range stats {
		if s.total < 20 {
			continue
		}
		frac := float64(s.taken) / float64(s.total)
		if frac > 0.85 || frac < 0.15 {
			biased++
		}
	}
	if biased == 0 {
		t.Error("no biased branch sites found")
	}
}
