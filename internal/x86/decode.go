package x86

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated reports that the byte stream ended inside an instruction.
var ErrTruncated = errors.New("x86: truncated instruction")

type decBuf struct {
	b   []byte
	pos int
}

func (d *decBuf) byte() (uint8, error) {
	if d.pos >= len(d.b) {
		return 0, ErrTruncated
	}
	v := d.b[d.pos]
	d.pos++
	return v, nil
}

func (d *decBuf) imm8() (int32, error) {
	v, err := d.byte()
	return int32(int8(v)), err
}

func (d *decBuf) imm16() (int32, error) {
	if d.pos+2 > len(d.b) {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint16(d.b[d.pos:])
	d.pos += 2
	return int32(v), nil
}

func (d *decBuf) imm32() (int32, error) {
	if d.pos+4 > len(d.b) {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint32(d.b[d.pos:])
	d.pos += 4
	return int32(v), nil
}

// modRM decodes a ModRM byte (plus SIB and displacement), returning the
// reg-field value and the r/m operand.
func (d *decBuf) modRM() (uint8, Operand, error) {
	mb, err := d.byte()
	if err != nil {
		return 0, Operand{}, err
	}
	mod := mb >> 6
	reg := (mb >> 3) & 7
	rm := mb & 7
	if mod == 3 {
		return reg, RegOp(Reg(rm)), nil
	}
	m := MemRef{Base: RegNone, Index: RegNone, Scale: 1}
	if rm == 4 {
		// SIB byte.
		sib, err := d.byte()
		if err != nil {
			return 0, Operand{}, err
		}
		idx := (sib >> 3) & 7
		if idx != 4 {
			m.Index = Reg(idx)
			m.Scale = 1 << (sib >> 6)
		}
		base := sib & 7
		if base == 5 && mod == 0 {
			m.Base = RegNone
			disp, err := d.imm32()
			if err != nil {
				return 0, Operand{}, err
			}
			m.Disp = disp
			return reg, MemOp(m), nil
		}
		m.Base = Reg(base)
	} else if rm == 5 && mod == 0 {
		// Absolute disp32.
		disp, err := d.imm32()
		if err != nil {
			return 0, Operand{}, err
		}
		m.Disp = disp
		return reg, MemOp(m), nil
	} else {
		m.Base = Reg(rm)
	}
	switch mod {
	case 1:
		disp, err := d.imm8()
		if err != nil {
			return 0, Operand{}, err
		}
		m.Disp = disp
	case 2:
		disp, err := d.imm32()
		if err != nil {
			return 0, Operand{}, err
		}
		m.Disp = disp
	}
	return reg, MemOp(m), nil
}

var aluOps = [8]Op{OpADD, OpOR, OpADC, OpSBB, OpAND, OpSUB, OpXOR, OpCMP}

// Decode decodes the instruction at the start of code. The returned
// instruction has Len set to the number of bytes consumed.
func Decode(code []byte) (Inst, error) {
	d := &decBuf{b: code}
	in, err := d.decode()
	if err != nil {
		return Inst{}, err
	}
	in.Len = d.pos
	return in, nil
}

func (d *decBuf) decode() (Inst, error) {
	op, err := d.byte()
	if err != nil {
		return Inst{}, err
	}
	none := Inst{Cond: CondNone}

	// Opcode-row ALU forms: 8*n + {01, 03, 05}.
	if op < 0x40 && (op&7 == 1 || op&7 == 3 || op&7 == 5) {
		n := op >> 3
		alu := aluOps[n]
		switch op & 7 {
		case 1: // op r/m32, r32
			reg, rm, err := d.modRM()
			if err != nil {
				return none, err
			}
			return Inst{Op: alu, Cond: CondNone, Dst: rm, Src: RegOp(Reg(reg))}, nil
		case 3: // op r32, r/m32
			reg, rm, err := d.modRM()
			if err != nil {
				return none, err
			}
			return Inst{Op: alu, Cond: CondNone, Dst: RegOp(Reg(reg)), Src: rm}, nil
		case 5: // op EAX, imm32
			imm, err := d.imm32()
			if err != nil {
				return none, err
			}
			return Inst{Op: alu, Cond: CondNone, Dst: RegOp(EAX), Src: ImmOp(imm)}, nil
		}
	}

	switch {
	case op >= 0x40 && op <= 0x47:
		return Inst{Op: OpINC, Cond: CondNone, Dst: RegOp(Reg(op - 0x40))}, nil
	case op >= 0x48 && op <= 0x4F:
		return Inst{Op: OpDEC, Cond: CondNone, Dst: RegOp(Reg(op - 0x48))}, nil
	case op >= 0x50 && op <= 0x57:
		return Inst{Op: OpPUSH, Cond: CondNone, Dst: RegOp(Reg(op - 0x50))}, nil
	case op >= 0x58 && op <= 0x5F:
		return Inst{Op: OpPOP, Cond: CondNone, Dst: RegOp(Reg(op - 0x58))}, nil
	case op >= 0x70 && op <= 0x7F:
		rel, err := d.imm8()
		if err != nil {
			return none, err
		}
		return Inst{Op: OpJCC, Cond: Cond(op - 0x70), Dst: ImmOp(rel)}, nil
	case op >= 0xB8 && op <= 0xBF:
		imm, err := d.imm32()
		if err != nil {
			return none, err
		}
		return Inst{Op: OpMOV, Cond: CondNone, Dst: RegOp(Reg(op - 0xB8)), Src: ImmOp(imm)}, nil
	}

	switch op {
	case 0x0F:
		return d.decode0F()
	case 0x68:
		imm, err := d.imm32()
		if err != nil {
			return none, err
		}
		return Inst{Op: OpPUSH, Cond: CondNone, Dst: ImmOp(imm)}, nil
	case 0x6A:
		imm, err := d.imm8()
		if err != nil {
			return none, err
		}
		return Inst{Op: OpPUSH, Cond: CondNone, Dst: ImmOp(imm)}, nil
	case 0x69, 0x6B:
		reg, rm, err := d.modRM()
		if err != nil {
			return none, err
		}
		var imm int32
		if op == 0x69 {
			imm, err = d.imm32()
		} else {
			imm, err = d.imm8()
		}
		if err != nil {
			return none, err
		}
		return Inst{Op: OpIMUL, Cond: CondNone, Dst: RegOp(Reg(reg)), Src: rm, Imm3: imm}, nil
	case 0x81, 0x83:
		reg, rm, err := d.modRM()
		if err != nil {
			return none, err
		}
		var imm int32
		if op == 0x81 {
			imm, err = d.imm32()
		} else {
			imm, err = d.imm8()
		}
		if err != nil {
			return none, err
		}
		return Inst{Op: aluOps[reg], Cond: CondNone, Dst: rm, Src: ImmOp(imm)}, nil
	case 0x85:
		reg, rm, err := d.modRM()
		if err != nil {
			return none, err
		}
		return Inst{Op: OpTEST, Cond: CondNone, Dst: rm, Src: RegOp(Reg(reg))}, nil
	case 0x87:
		reg, rm, err := d.modRM()
		if err != nil {
			return none, err
		}
		return Inst{Op: OpXCHG, Cond: CondNone, Dst: rm, Src: RegOp(Reg(reg))}, nil
	case 0x89:
		reg, rm, err := d.modRM()
		if err != nil {
			return none, err
		}
		return Inst{Op: OpMOV, Cond: CondNone, Dst: rm, Src: RegOp(Reg(reg))}, nil
	case 0x8B:
		reg, rm, err := d.modRM()
		if err != nil {
			return none, err
		}
		return Inst{Op: OpMOV, Cond: CondNone, Dst: RegOp(Reg(reg)), Src: rm}, nil
	case 0x8D:
		reg, rm, err := d.modRM()
		if err != nil {
			return none, err
		}
		if rm.Kind != KindMem {
			return none, fmt.Errorf("x86: LEA with register r/m")
		}
		return Inst{Op: OpLEA, Cond: CondNone, Dst: RegOp(Reg(reg)), Src: rm}, nil
	case 0x8F:
		reg, rm, err := d.modRM()
		if err != nil {
			return none, err
		}
		if reg != 0 {
			return none, fmt.Errorf("x86: bad POP /digit %d", reg)
		}
		return Inst{Op: OpPOP, Cond: CondNone, Dst: rm}, nil
	case 0x90:
		return Inst{Op: OpNOP, Cond: CondNone}, nil
	case 0x99:
		return Inst{Op: OpCDQ, Cond: CondNone}, nil
	case 0xA9:
		imm, err := d.imm32()
		if err != nil {
			return none, err
		}
		return Inst{Op: OpTEST, Cond: CondNone, Dst: RegOp(EAX), Src: ImmOp(imm)}, nil
	case 0xC1, 0xD1, 0xD3:
		reg, rm, err := d.modRM()
		if err != nil {
			return none, err
		}
		var sop Op
		switch reg {
		case 4:
			sop = OpSHL
		case 5:
			sop = OpSHR
		case 7:
			sop = OpSAR
		default:
			return none, fmt.Errorf("x86: bad shift /digit %d", reg)
		}
		switch op {
		case 0xD1:
			return Inst{Op: sop, Cond: CondNone, Dst: rm, Src: ImmOp(1)}, nil
		case 0xD3:
			return Inst{Op: sop, Cond: CondNone, Dst: rm, Src: RegOp(ECX)}, nil
		default:
			imm, err := d.imm8()
			if err != nil {
				return none, err
			}
			return Inst{Op: sop, Cond: CondNone, Dst: rm, Src: ImmOp(imm)}, nil
		}
	case 0xC2:
		imm, err := d.imm16()
		if err != nil {
			return none, err
		}
		return Inst{Op: OpRET, Cond: CondNone, Dst: ImmOp(imm)}, nil
	case 0xC3:
		return Inst{Op: OpRET, Cond: CondNone}, nil
	case 0xC7:
		reg, rm, err := d.modRM()
		if err != nil {
			return none, err
		}
		if reg != 0 {
			return none, fmt.Errorf("x86: bad MOV /digit %d", reg)
		}
		imm, err := d.imm32()
		if err != nil {
			return none, err
		}
		return Inst{Op: OpMOV, Cond: CondNone, Dst: rm, Src: ImmOp(imm)}, nil
	case 0xC9:
		return Inst{Op: OpLEAVE, Cond: CondNone}, nil
	case 0xE8:
		rel, err := d.imm32()
		if err != nil {
			return none, err
		}
		return Inst{Op: OpCALL, Cond: CondNone, Dst: ImmOp(rel)}, nil
	case 0xE9:
		rel, err := d.imm32()
		if err != nil {
			return none, err
		}
		return Inst{Op: OpJMP, Cond: CondNone, Dst: ImmOp(rel)}, nil
	case 0xEB:
		rel, err := d.imm8()
		if err != nil {
			return none, err
		}
		return Inst{Op: OpJMP, Cond: CondNone, Dst: ImmOp(rel)}, nil
	case 0xF4:
		return Inst{Op: OpHLT, Cond: CondNone}, nil
	case 0xF7:
		reg, rm, err := d.modRM()
		if err != nil {
			return none, err
		}
		switch reg {
		case 0:
			imm, err := d.imm32()
			if err != nil {
				return none, err
			}
			return Inst{Op: OpTEST, Cond: CondNone, Dst: rm, Src: ImmOp(imm)}, nil
		case 2:
			return Inst{Op: OpNOT, Cond: CondNone, Dst: rm}, nil
		case 3:
			return Inst{Op: OpNEG, Cond: CondNone, Dst: rm}, nil
		case 4:
			return Inst{Op: OpMUL, Cond: CondNone, Dst: rm}, nil
		case 5:
			return Inst{Op: OpIMUL, Cond: CondNone, Dst: rm}, nil
		case 6:
			return Inst{Op: OpDIV, Cond: CondNone, Dst: rm}, nil
		case 7:
			return Inst{Op: OpIDIV, Cond: CondNone, Dst: rm}, nil
		}
		return none, fmt.Errorf("x86: bad F7 /digit %d", reg)
	case 0xFF:
		reg, rm, err := d.modRM()
		if err != nil {
			return none, err
		}
		switch reg {
		case 0:
			return Inst{Op: OpINC, Cond: CondNone, Dst: rm}, nil
		case 1:
			return Inst{Op: OpDEC, Cond: CondNone, Dst: rm}, nil
		case 2:
			return Inst{Op: OpCALL, Cond: CondNone, Dst: rm}, nil
		case 4:
			return Inst{Op: OpJMP, Cond: CondNone, Dst: rm}, nil
		case 6:
			return Inst{Op: OpPUSH, Cond: CondNone, Dst: rm}, nil
		}
		return none, fmt.Errorf("x86: bad FF /digit %d", reg)
	}
	return none, fmt.Errorf("x86: unknown opcode %#02x", op)
}

func (d *decBuf) decode0F() (Inst, error) {
	none := Inst{Cond: CondNone}
	op2, err := d.byte()
	if err != nil {
		return none, err
	}
	switch {
	case op2 >= 0x40 && op2 <= 0x4F: // CMOVcc
		reg, rm, err := d.modRM()
		if err != nil {
			return none, err
		}
		return Inst{Op: OpCMOV, Cond: Cond(op2 - 0x40), Dst: RegOp(Reg(reg)), Src: rm}, nil
	case op2 >= 0x80 && op2 <= 0x8F: // Jcc rel32
		rel, err := d.imm32()
		if err != nil {
			return none, err
		}
		return Inst{Op: OpJCC, Cond: Cond(op2 - 0x80), Dst: ImmOp(rel)}, nil
	case op2 == 0xAF: // IMUL r32, r/m32
		reg, rm, err := d.modRM()
		if err != nil {
			return none, err
		}
		return Inst{Op: OpIMUL, Cond: CondNone, Dst: RegOp(Reg(reg)), Src: rm}, nil
	}
	return none, fmt.Errorf("x86: unknown opcode 0F %#02x", op2)
}
