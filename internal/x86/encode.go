package x86

import (
	"encoding/binary"
	"fmt"
)

// aluIndex maps the classic ALU-group operations to their /digit and
// opcode-row index (ADD=0 ... CMP=7).
func aluIndex(op Op) (uint8, bool) {
	switch op {
	case OpADD:
		return 0, true
	case OpOR:
		return 1, true
	case OpADC:
		return 2, true
	case OpSBB:
		return 3, true
	case OpAND:
		return 4, true
	case OpSUB:
		return 5, true
	case OpXOR:
		return 6, true
	case OpCMP:
		return 7, true
	}
	return 0, false
}

func shiftDigit(op Op) (uint8, bool) {
	switch op {
	case OpSHL:
		return 4, true
	case OpSHR:
		return 5, true
	case OpSAR:
		return 7, true
	}
	return 0, false
}

type encBuf struct {
	b []byte
}

func (e *encBuf) byte(v uint8)  { e.b = append(e.b, v) }
func (e *encBuf) imm8(v int32)  { e.b = append(e.b, uint8(v)) }
func (e *encBuf) imm16(v int32) { e.b = binary.LittleEndian.AppendUint16(e.b, uint16(v)) }
func (e *encBuf) imm32(v int32) { e.b = binary.LittleEndian.AppendUint32(e.b, uint32(v)) }

func fitsInt8(v int32) bool { return v >= -128 && v <= 127 }

// modRM emits the ModRM byte (and SIB/displacement as needed) for the
// given reg-field value and r/m operand.
func (e *encBuf) modRM(reg uint8, rm Operand) error {
	switch rm.Kind {
	case KindReg:
		e.byte(0xC0 | reg<<3 | uint8(rm.Reg))
		return nil
	case KindMem:
		return e.modRMMem(reg, rm.Mem)
	default:
		return fmt.Errorf("x86: bad r/m operand kind %d", rm.Kind)
	}
}

func scaleBits(s uint8) (uint8, error) {
	switch s {
	case 0, 1:
		return 0, nil
	case 2:
		return 1, nil
	case 4:
		return 2, nil
	case 8:
		return 3, nil
	}
	return 0, fmt.Errorf("x86: bad scale %d", s)
}

func (e *encBuf) modRMMem(reg uint8, m MemRef) error {
	if m.Index == ESP {
		return fmt.Errorf("x86: ESP cannot be an index register")
	}
	// Absolute [disp32]: mod=00 rm=101.
	if m.Base == RegNone && m.Index == RegNone {
		e.byte(0x00 | reg<<3 | 0x05)
		e.imm32(m.Disp)
		return nil
	}
	needSIB := m.Index != RegNone || m.Base == ESP || m.Base == RegNone
	if !needSIB {
		// Simple [base+disp] form.
		switch {
		case m.Disp == 0 && m.Base != EBP:
			e.byte(0x00 | reg<<3 | uint8(m.Base))
		case fitsInt8(m.Disp):
			e.byte(0x40 | reg<<3 | uint8(m.Base))
			e.imm8(m.Disp)
		default:
			e.byte(0x80 | reg<<3 | uint8(m.Base))
			e.imm32(m.Disp)
		}
		return nil
	}
	// SIB form.
	ss, err := scaleBits(m.Scale)
	if err != nil {
		return err
	}
	idx := uint8(4) // "none"
	if m.Index != RegNone {
		idx = uint8(m.Index)
	}
	if m.Base == RegNone {
		// [index*scale+disp32]: mod=00, base=101, disp32 mandatory.
		e.byte(0x00 | reg<<3 | 0x04)
		e.byte(ss<<6 | idx<<3 | 0x05)
		e.imm32(m.Disp)
		return nil
	}
	base := uint8(m.Base)
	switch {
	case m.Disp == 0 && m.Base != EBP:
		e.byte(0x00 | reg<<3 | 0x04)
		e.byte(ss<<6 | idx<<3 | base)
	case fitsInt8(m.Disp):
		e.byte(0x40 | reg<<3 | 0x04)
		e.byte(ss<<6 | idx<<3 | base)
		e.imm8(m.Disp)
	default:
		e.byte(0x80 | reg<<3 | 0x04)
		e.byte(ss<<6 | idx<<3 | base)
		e.imm32(m.Disp)
	}
	return nil
}

// Encode produces the IA-32 machine code for the instruction. The returned
// slice is freshly allocated. Relative branch displacements are taken from
// Dst.Imm and are relative to the end of the encoded instruction; Encode
// selects the short (rel8) form when the displacement fits.
func Encode(in Inst) ([]byte, error) {
	e := &encBuf{b: make([]byte, 0, 8)}
	err := e.encode(in)
	if err != nil {
		return nil, fmt.Errorf("x86: encode %s: %w", in, err)
	}
	return e.b, nil
}

func (e *encBuf) encode(in Inst) error {
	d, s := in.Dst, in.Src
	switch in.Op {
	case OpMOV:
		switch {
		case d.Kind == KindReg && s.Kind == KindImm:
			e.byte(0xB8 + uint8(d.Reg))
			e.imm32(s.Imm)
		case d.Kind == KindMem && s.Kind == KindImm:
			e.byte(0xC7)
			if err := e.modRM(0, d); err != nil {
				return err
			}
			e.imm32(s.Imm)
		case d.Kind == KindReg && (s.Kind == KindReg || s.Kind == KindMem):
			e.byte(0x8B)
			return e.modRM(uint8(d.Reg), s)
		case d.Kind == KindMem && s.Kind == KindReg:
			e.byte(0x89)
			return e.modRM(uint8(s.Reg), d)
		default:
			return fmt.Errorf("unsupported MOV form")
		}
	case OpLEA:
		if d.Kind != KindReg || s.Kind != KindMem {
			return fmt.Errorf("LEA needs reg, mem")
		}
		e.byte(0x8D)
		return e.modRM(uint8(d.Reg), s)
	case OpXCHG:
		if s.Kind != KindReg {
			return fmt.Errorf("XCHG needs a register source")
		}
		e.byte(0x87)
		return e.modRM(uint8(s.Reg), d)
	case OpCMOV:
		if d.Kind != KindReg || in.Cond >= 16 {
			return fmt.Errorf("CMOVcc needs reg dst and condition")
		}
		e.byte(0x0F)
		e.byte(0x40 + uint8(in.Cond))
		return e.modRM(uint8(d.Reg), s)

	case OpADD, OpOR, OpADC, OpSBB, OpAND, OpSUB, OpXOR, OpCMP:
		n, _ := aluIndex(in.Op)
		switch {
		case s.Kind == KindImm && d.Kind != KindImm:
			if fitsInt8(s.Imm) {
				e.byte(0x83)
				if err := e.modRM(n, d); err != nil {
					return err
				}
				e.imm8(s.Imm)
			} else {
				e.byte(0x81)
				if err := e.modRM(n, d); err != nil {
					return err
				}
				e.imm32(s.Imm)
			}
		case d.Kind == KindReg && (s.Kind == KindReg || s.Kind == KindMem):
			e.byte(n*8 + 0x03)
			return e.modRM(uint8(d.Reg), s)
		case d.Kind == KindMem && s.Kind == KindReg:
			e.byte(n*8 + 0x01)
			return e.modRM(uint8(s.Reg), d)
		default:
			return fmt.Errorf("unsupported ALU form")
		}
	case OpTEST:
		switch {
		case s.Kind == KindReg:
			e.byte(0x85)
			return e.modRM(uint8(s.Reg), d)
		case s.Kind == KindImm:
			e.byte(0xF7)
			if err := e.modRM(0, d); err != nil {
				return err
			}
			e.imm32(s.Imm)
		default:
			return fmt.Errorf("unsupported TEST form")
		}

	case OpINC, OpDEC:
		digit := uint8(0)
		if in.Op == OpDEC {
			digit = 1
		}
		if d.Kind == KindReg {
			e.byte(0x40 + digit*8 + uint8(d.Reg))
			return nil
		}
		e.byte(0xFF)
		return e.modRM(digit, d)
	case OpNOT:
		e.byte(0xF7)
		return e.modRM(2, d)
	case OpNEG:
		e.byte(0xF7)
		return e.modRM(3, d)
	case OpMUL:
		e.byte(0xF7)
		return e.modRM(4, d)
	case OpIMUL:
		switch {
		case s.Kind == KindNone:
			// One-operand form: EDX:EAX = EAX * r/m32.
			e.byte(0xF7)
			return e.modRM(5, d)
		case in.Imm3 != 0:
			if d.Kind != KindReg {
				return fmt.Errorf("IMUL three-operand needs reg dst")
			}
			if fitsInt8(in.Imm3) {
				e.byte(0x6B)
				if err := e.modRM(uint8(d.Reg), s); err != nil {
					return err
				}
				e.imm8(in.Imm3)
			} else {
				e.byte(0x69)
				if err := e.modRM(uint8(d.Reg), s); err != nil {
					return err
				}
				e.imm32(in.Imm3)
			}
		default:
			if d.Kind != KindReg {
				return fmt.Errorf("IMUL two-operand needs reg dst")
			}
			e.byte(0x0F)
			e.byte(0xAF)
			return e.modRM(uint8(d.Reg), s)
		}
	case OpDIV:
		e.byte(0xF7)
		return e.modRM(6, d)
	case OpIDIV:
		e.byte(0xF7)
		return e.modRM(7, d)
	case OpCDQ:
		e.byte(0x99)

	case OpSHL, OpSHR, OpSAR:
		digit, _ := shiftDigit(in.Op)
		switch {
		case s.Kind == KindImm && s.Imm == 1:
			e.byte(0xD1)
			return e.modRM(digit, d)
		case s.Kind == KindImm:
			e.byte(0xC1)
			if err := e.modRM(digit, d); err != nil {
				return err
			}
			e.imm8(s.Imm)
		case s.Kind == KindReg && s.Reg == ECX:
			e.byte(0xD3)
			return e.modRM(digit, d)
		default:
			return fmt.Errorf("shift count must be imm or CL")
		}

	case OpPUSH:
		switch d.Kind {
		case KindReg:
			e.byte(0x50 + uint8(d.Reg))
		case KindImm:
			if fitsInt8(d.Imm) {
				e.byte(0x6A)
				e.imm8(d.Imm)
			} else {
				e.byte(0x68)
				e.imm32(d.Imm)
			}
		case KindMem:
			e.byte(0xFF)
			return e.modRM(6, d)
		default:
			return fmt.Errorf("unsupported PUSH form")
		}
	case OpPOP:
		switch d.Kind {
		case KindReg:
			e.byte(0x58 + uint8(d.Reg))
		case KindMem:
			e.byte(0x8F)
			return e.modRM(0, d)
		default:
			return fmt.Errorf("unsupported POP form")
		}
	case OpLEAVE:
		e.byte(0xC9)

	case OpJMP:
		switch d.Kind {
		case KindImm:
			if fitsInt8(d.Imm) {
				e.byte(0xEB)
				e.imm8(d.Imm)
			} else {
				e.byte(0xE9)
				e.imm32(d.Imm)
			}
		case KindReg, KindMem:
			e.byte(0xFF)
			return e.modRM(4, d)
		default:
			return fmt.Errorf("unsupported JMP form")
		}
	case OpJCC:
		if in.Cond >= 16 || d.Kind != KindImm {
			return fmt.Errorf("JCC needs condition and immediate target")
		}
		if fitsInt8(d.Imm) {
			e.byte(0x70 + uint8(in.Cond))
			e.imm8(d.Imm)
		} else {
			e.byte(0x0F)
			e.byte(0x80 + uint8(in.Cond))
			e.imm32(d.Imm)
		}
	case OpCALL:
		switch d.Kind {
		case KindImm:
			e.byte(0xE8)
			e.imm32(d.Imm)
		case KindReg, KindMem:
			e.byte(0xFF)
			return e.modRM(2, d)
		default:
			return fmt.Errorf("unsupported CALL form")
		}
	case OpRET:
		if d.Kind == KindImm {
			e.byte(0xC2)
			e.imm16(d.Imm)
		} else {
			e.byte(0xC3)
		}

	case OpNOP:
		e.byte(0x90)
	case OpHLT:
		e.byte(0xF4)
	default:
		return fmt.Errorf("unsupported op %s", in.Op)
	}
	return nil
}
