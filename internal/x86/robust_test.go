package x86

import (
	"math/rand"
	"testing"
)

// TestDecodeNeverPanics: the decoder must reject arbitrary byte soup with
// an error, never a panic, and always report a positive length on
// success.
func TestDecodeNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	buf := make([]byte, 15)
	for trial := 0; trial < 200_000; trial++ {
		n := 1 + r.Intn(15)
		for i := 0; i < n; i++ {
			buf[i] = byte(r.Uint32())
		}
		in, err := Decode(buf[:n])
		if err != nil {
			continue
		}
		if in.Len <= 0 || in.Len > n {
			t.Fatalf("bad length %d for %X", in.Len, buf[:n])
		}
		if in.Op == OpInvalid {
			t.Fatalf("decoded OpInvalid from %X", buf[:n])
		}
	}
}

// TestDecodeEncodeDecode: anything the decoder accepts re-encodes to
// something that decodes back to the same instruction (the encoder may
// choose a different but equivalent encoding).
func TestDecodeEncodeDecode(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	buf := make([]byte, 15)
	checked := 0
	for trial := 0; trial < 300_000 && checked < 20_000; trial++ {
		for i := range buf {
			buf[i] = byte(r.Uint32())
		}
		in, err := Decode(buf)
		if err != nil {
			continue
		}
		enc, err := Encode(in)
		if err != nil {
			// Some decodable forms are not canonical encoder outputs
			// (e.g. ALU row 05 short forms re-encode fine; anything that
			// fails here is a bug).
			t.Fatalf("re-encode failed for %s (from %X): %v", in, buf[:in.Len], err)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode failed for %s (%X): %v", in, enc, err)
		}
		dec.Len, in.Len = 0, 0
		if dec != in {
			t.Fatalf("decode(encode(x)) != x:\n  %+v\n  %+v", in, dec)
		}
		checked++
	}
	if checked < 1000 {
		t.Fatalf("only %d random encodings checked", checked)
	}
}
