// Package x86 models the IA-32 subset used by the reproduction: the eight
// 32-bit general-purpose registers, the arithmetic flags, condition codes,
// an instruction representation, and a binary encoder/decoder for real
// IA-32 machine code (ModRM/SIB/displacement/immediate forms).
//
// The subset covers what compiler-generated 32-bit integer code needs:
// MOV/LEA/XCHG data movement, the classic ALU group, shifts, multiply and
// divide, stack operations, and control transfer. All operations are
// 32-bit; the reproduction does not model 8/16-bit sub-registers or
// prefixes (see DESIGN.md).
package x86

import "fmt"

// Reg is an IA-32 general-purpose register. The numeric values match the
// hardware register numbers used in ModRM/SIB encodings.
type Reg uint8

// The eight general-purpose registers, in hardware encoding order.
const (
	EAX Reg = 0
	ECX Reg = 1
	EDX Reg = 2
	EBX Reg = 3
	ESP Reg = 4
	EBP Reg = 5
	ESI Reg = 6
	EDI Reg = 7

	// RegNone marks an absent register operand (e.g. no index register).
	RegNone Reg = 0xFF
)

// NumGPR is the number of general-purpose registers.
const NumGPR = 8

var regNames = [NumGPR]string{"EAX", "ECX", "EDX", "EBX", "ESP", "EBP", "ESI", "EDI"}

func (r Reg) String() string {
	if r < NumGPR {
		return regNames[r]
	}
	if r == RegNone {
		return "-"
	}
	return fmt.Sprintf("R?%d", uint8(r))
}

// Valid reports whether r names one of the eight GPRs.
func (r Reg) Valid() bool { return r < NumGPR }

// Flags holds the IA-32 arithmetic flags modeled by the reproduction
// (CF, PF, ZF, SF, OF). AF is not modeled; no supported instruction or
// condition reads it.
type Flags uint32

// Flag bit positions match the IA-32 EFLAGS layout.
const (
	FlagC Flags = 1 << 0  // carry
	FlagP Flags = 1 << 2  // parity
	FlagZ Flags = 1 << 6  // zero
	FlagS Flags = 1 << 7  // sign
	FlagO Flags = 1 << 11 // overflow
)

// FlagMask selects the modeled flag bits.
const FlagMask = FlagC | FlagP | FlagZ | FlagS | FlagO

func (f Flags) String() string {
	s := ""
	for _, p := range []struct {
		bit  Flags
		name string
	}{{FlagC, "C"}, {FlagP, "P"}, {FlagZ, "Z"}, {FlagS, "S"}, {FlagO, "O"}} {
		if f&p.bit != 0 {
			s += p.name
		} else {
			s += "-"
		}
	}
	return s
}

// Cond is an IA-32 condition code. The numeric values match the 4-bit cc
// field of Jcc/SETcc/CMOVcc encodings.
type Cond uint8

// Condition codes in hardware encoding order.
const (
	CondO  Cond = 0x0 // overflow
	CondNO Cond = 0x1
	CondB  Cond = 0x2 // below (unsigned <)
	CondAE Cond = 0x3
	CondE  Cond = 0x4 // equal / zero
	CondNE Cond = 0x5
	CondBE Cond = 0x6
	CondA  Cond = 0x7
	CondS  Cond = 0x8 // sign
	CondNS Cond = 0x9
	CondP  Cond = 0xA
	CondNP Cond = 0xB
	CondL  Cond = 0xC // less (signed <)
	CondGE Cond = 0xD
	CondLE Cond = 0xE
	CondG  Cond = 0xF

	// CondNone marks an unconditional instruction.
	CondNone Cond = 0x10
)

var condNames = [16]string{
	"O", "NO", "B", "AE", "E", "NE", "BE", "A",
	"S", "NS", "P", "NP", "L", "GE", "LE", "G",
}

func (c Cond) String() string {
	if c < 16 {
		return condNames[c]
	}
	return "AL" // always
}

// Negate returns the condition with the opposite sense (E <-> NE, ...).
func (c Cond) Negate() Cond {
	if c >= 16 {
		return c
	}
	return c ^ 1
}

// Eval reports whether the condition holds under the given flags.
func (c Cond) Eval(f Flags) bool {
	cf := f&FlagC != 0
	zf := f&FlagZ != 0
	sf := f&FlagS != 0
	of := f&FlagO != 0
	pf := f&FlagP != 0
	switch c {
	case CondO:
		return of
	case CondNO:
		return !of
	case CondB:
		return cf
	case CondAE:
		return !cf
	case CondE:
		return zf
	case CondNE:
		return !zf
	case CondBE:
		return cf || zf
	case CondA:
		return !cf && !zf
	case CondS:
		return sf
	case CondNS:
		return !sf
	case CondP:
		return pf
	case CondNP:
		return !pf
	case CondL:
		return sf != of
	case CondGE:
		return sf == of
	case CondLE:
		return zf || sf != of
	case CondG:
		return !zf && sf == of
	default:
		return true
	}
}

// Op is a mnemonic-level opcode of the modeled subset.
type Op uint8

// Supported operations.
const (
	OpInvalid Op = iota
	OpMOV
	OpLEA
	OpXCHG
	OpCMOV // CMOVcc

	OpADD
	OpOR
	OpADC
	OpSBB
	OpAND
	OpSUB
	OpXOR
	OpCMP
	OpTEST

	OpINC
	OpDEC
	OpNEG
	OpNOT

	OpSHL
	OpSHR
	OpSAR

	OpIMUL // two- or three-operand form
	OpMUL  // EDX:EAX = EAX * r/m32
	OpDIV  // unsigned divide of EDX:EAX
	OpIDIV // signed divide of EDX:EAX
	OpCDQ  // sign-extend EAX into EDX

	OpPUSH
	OpPOP
	OpLEAVE

	OpJMP  // direct relative, or indirect via r/m
	OpJCC  // conditional relative
	OpCALL // direct relative, or indirect via r/m
	OpRET

	OpNOP
	OpHLT

	numOps
)

var opNames = [numOps]string{
	"INVALID", "MOV", "LEA", "XCHG", "CMOV",
	"ADD", "OR", "ADC", "SBB", "AND", "SUB", "XOR", "CMP", "TEST",
	"INC", "DEC", "NEG", "NOT",
	"SHL", "SHR", "SAR",
	"IMUL", "MUL", "DIV", "IDIV", "CDQ",
	"PUSH", "POP", "LEAVE",
	"JMP", "JCC", "CALL", "RET",
	"NOP", "HLT",
}

func (o Op) String() string {
	if o < numOps {
		return opNames[o]
	}
	return fmt.Sprintf("Op?%d", uint8(o))
}

// OperandKind distinguishes the forms an instruction operand can take.
type OperandKind uint8

// Operand kinds.
const (
	KindNone OperandKind = iota
	KindReg
	KindImm
	KindMem
)

// MemRef is an IA-32 memory reference: [Base + Index*Scale + Disp].
// Base and Index are RegNone when absent; Scale is 1, 2, 4, or 8.
type MemRef struct {
	Base  Reg
	Index Reg
	Scale uint8
	Disp  int32
}

func (m MemRef) String() string {
	s := "["
	sep := ""
	if m.Base != RegNone {
		s += m.Base.String()
		sep = "+"
	}
	if m.Index != RegNone {
		s += fmt.Sprintf("%s%s*%d", sep, m.Index, m.Scale)
		sep = "+"
	}
	if m.Disp != 0 || sep == "" {
		if m.Disp < 0 {
			s += fmt.Sprintf("-0x%X", uint32(-m.Disp))
		} else {
			s += fmt.Sprintf("%s0x%X", sep, uint32(m.Disp))
		}
	}
	return s + "]"
}

// Operand is one instruction operand.
type Operand struct {
	Kind OperandKind
	Reg  Reg
	Imm  int32
	Mem  MemRef
}

// RegOp returns a register operand.
func RegOp(r Reg) Operand { return Operand{Kind: KindReg, Reg: r} }

// ImmOp returns an immediate operand.
func ImmOp(v int32) Operand { return Operand{Kind: KindImm, Imm: v} }

// MemOp returns a memory operand.
func MemOp(m MemRef) Operand { return Operand{Kind: KindMem, Mem: m} }

// Mem builds a [base+disp] memory operand.
func Mem(base Reg, disp int32) Operand {
	return MemOp(MemRef{Base: base, Index: RegNone, Scale: 1, Disp: disp})
}

// MemIdx builds a [base+index*scale+disp] memory operand.
func MemIdx(base, index Reg, scale uint8, disp int32) Operand {
	return MemOp(MemRef{Base: base, Index: index, Scale: scale, Disp: disp})
}

// MemAbs builds an absolute [disp32] memory operand.
func MemAbs(addr uint32) Operand {
	return MemOp(MemRef{Base: RegNone, Index: RegNone, Scale: 1, Disp: int32(addr)})
}

func (o Operand) String() string {
	switch o.Kind {
	case KindReg:
		return o.Reg.String()
	case KindImm:
		if o.Imm < 0 {
			return fmt.Sprintf("-0x%X", uint32(-o.Imm))
		}
		return fmt.Sprintf("0x%X", uint32(o.Imm))
	case KindMem:
		return o.Mem.String()
	default:
		return ""
	}
}

// Inst is a decoded (or to-be-encoded) instruction.
//
// For two-address operations Dst is both the first source and the
// destination, matching IA-32 semantics. For relative control transfers
// (JMP/JCC/CALL with Dst.Kind == KindImm) the immediate holds the
// displacement relative to the end of the instruction; use TargetPC.
// Three-operand IMUL uses Dst (register), Src (r/m) and Imm3.
type Inst struct {
	Op   Op
	Cond Cond // condition for JCC/CMOV; CondNone otherwise
	Dst  Operand
	Src  Operand
	Imm3 int32 // third operand of IMUL r32, r/m32, imm32
	Len  int   // encoded length in bytes (set by Decode/Encode)
}

// TargetPC returns the absolute target of a relative control transfer
// located at pc. It is meaningful only for JMP/JCC/CALL with an immediate
// destination.
func (in Inst) TargetPC(pc uint32) uint32 {
	return pc + uint32(in.Len) + uint32(in.Dst.Imm)
}

// IsBranch reports whether the instruction redirects control flow.
func (in Inst) IsBranch() bool {
	switch in.Op {
	case OpJMP, OpJCC, OpCALL, OpRET:
		return true
	}
	return false
}

// IsCondBranch reports whether the instruction is a conditional branch.
func (in Inst) IsCondBranch() bool { return in.Op == OpJCC }

func (in Inst) String() string {
	name := in.Op.String()
	if in.Op == OpJCC {
		name = "J" + in.Cond.String()
	}
	if in.Op == OpCMOV {
		name = "CMOV" + in.Cond.String()
	}
	switch {
	case in.Op == OpIMUL && in.Src.Kind != KindNone && in.Imm3 != 0:
		return fmt.Sprintf("%s %s, %s, 0x%X", name, in.Dst, in.Src, uint32(in.Imm3))
	case in.Dst.Kind != KindNone && in.Src.Kind != KindNone:
		return fmt.Sprintf("%s %s, %s", name, in.Dst, in.Src)
	case in.Dst.Kind != KindNone:
		return fmt.Sprintf("%s %s", name, in.Dst)
	default:
		return name
	}
}
