package x86

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// golden encodings verified against the IA-32 manual.
var goldenTests = []struct {
	in    Inst
	bytes []byte
	str   string
}{
	{Inst{Op: OpPUSH, Cond: CondNone, Dst: RegOp(EBP)}, []byte{0x55}, "PUSH EBP"},
	{Inst{Op: OpPUSH, Cond: CondNone, Dst: RegOp(EBX)}, []byte{0x53}, "PUSH EBX"},
	{Inst{Op: OpPOP, Cond: CondNone, Dst: RegOp(EBX)}, []byte{0x5B}, "POP EBX"},
	{Inst{Op: OpMOV, Cond: CondNone, Dst: RegOp(EBP), Src: RegOp(ESP)}, []byte{0x8B, 0xEC}, "MOV EBP, ESP"},
	{Inst{Op: OpMOV, Cond: CondNone, Dst: RegOp(ECX), Src: Mem(ESP, 0x0C)},
		[]byte{0x8B, 0x4C, 0x24, 0x0C}, "MOV ECX, [ESP+0xC]"},
	{Inst{Op: OpMOV, Cond: CondNone, Dst: Mem(EBP, -4), Src: RegOp(EAX)},
		[]byte{0x89, 0x45, 0xFC}, "MOV [EBP-0x4], EAX"},
	{Inst{Op: OpMOV, Cond: CondNone, Dst: RegOp(EAX), Src: ImmOp(5)},
		[]byte{0xB8, 0x05, 0x00, 0x00, 0x00}, "MOV EAX, 0x5"},
	{Inst{Op: OpXOR, Cond: CondNone, Dst: RegOp(EAX), Src: RegOp(EAX)},
		[]byte{0x33, 0xC0}, "XOR EAX, EAX"},
	{Inst{Op: OpADD, Cond: CondNone, Dst: RegOp(ESP), Src: ImmOp(8)},
		[]byte{0x83, 0xC4, 0x08}, "ADD ESP, 0x8"},
	{Inst{Op: OpSUB, Cond: CondNone, Dst: RegOp(ESP), Src: ImmOp(0x100)},
		[]byte{0x81, 0xEC, 0x00, 0x01, 0x00, 0x00}, "SUB ESP, 0x100"},
	{Inst{Op: OpLEA, Cond: CondNone, Dst: RegOp(EAX), Src: MemIdx(EBX, ESI, 4, 8)},
		[]byte{0x8D, 0x44, 0xB3, 0x08}, "LEA EAX, [EBX+ESI*4+0x8]"},
	{Inst{Op: OpINC, Cond: CondNone, Dst: RegOp(EAX)}, []byte{0x40}, "INC EAX"},
	{Inst{Op: OpDEC, Cond: CondNone, Dst: RegOp(ECX)}, []byte{0x49}, "DEC ECX"},
	{Inst{Op: OpTEST, Cond: CondNone, Dst: RegOp(EAX), Src: RegOp(EAX)},
		[]byte{0x85, 0xC0}, "TEST EAX, EAX"},
	{Inst{Op: OpCMP, Cond: CondNone, Dst: RegOp(EDX), Src: Mem(ESI, 0)},
		[]byte{0x3B, 0x16}, "CMP EDX, [ESI]"},
	{Inst{Op: OpJCC, Cond: CondE, Dst: ImmOp(0x15)}, []byte{0x74, 0x15}, "JE 0x15"},
	{Inst{Op: OpJCC, Cond: CondNE, Dst: ImmOp(0x1234)},
		[]byte{0x0F, 0x85, 0x34, 0x12, 0x00, 0x00}, "JNE 0x1234"},
	{Inst{Op: OpJMP, Cond: CondNone, Dst: ImmOp(-2)}, []byte{0xEB, 0xFE}, "JMP -0x2"},
	{Inst{Op: OpCALL, Cond: CondNone, Dst: ImmOp(0x40)},
		[]byte{0xE8, 0x40, 0x00, 0x00, 0x00}, "CALL 0x40"},
	{Inst{Op: OpCALL, Cond: CondNone, Dst: RegOp(EAX)}, []byte{0xFF, 0xD0}, "CALL EAX"},
	{Inst{Op: OpJMP, Cond: CondNone, Dst: RegOp(EDX)}, []byte{0xFF, 0xE2}, "JMP EDX"},
	{Inst{Op: OpRET, Cond: CondNone}, []byte{0xC3}, "RET"},
	{Inst{Op: OpRET, Cond: CondNone, Dst: ImmOp(8)}, []byte{0xC2, 0x08, 0x00}, "RET 0x8"},
	{Inst{Op: OpNOP, Cond: CondNone}, []byte{0x90}, "NOP"},
	{Inst{Op: OpCDQ, Cond: CondNone}, []byte{0x99}, "CDQ"},
	{Inst{Op: OpLEAVE, Cond: CondNone}, []byte{0xC9}, "LEAVE"},
	{Inst{Op: OpHLT, Cond: CondNone}, []byte{0xF4}, "HLT"},
	{Inst{Op: OpSHL, Cond: CondNone, Dst: RegOp(EAX), Src: ImmOp(4)},
		[]byte{0xC1, 0xE0, 0x04}, "SHL EAX, 0x4"},
	{Inst{Op: OpSAR, Cond: CondNone, Dst: RegOp(EDX), Src: ImmOp(1)},
		[]byte{0xD1, 0xFA}, "SAR EDX, 0x1"},
	{Inst{Op: OpSHR, Cond: CondNone, Dst: RegOp(EBX), Src: RegOp(ECX)},
		[]byte{0xD3, 0xEB}, "SHR EBX, ECX"},
	{Inst{Op: OpIMUL, Cond: CondNone, Dst: RegOp(EAX), Src: RegOp(EDX)},
		[]byte{0x0F, 0xAF, 0xC2}, "IMUL EAX, EDX"},
	{Inst{Op: OpIMUL, Cond: CondNone, Dst: RegOp(EAX), Src: RegOp(EAX), Imm3: 10},
		[]byte{0x6B, 0xC0, 0x0A}, "IMUL EAX, EAX, 0xA"},
	{Inst{Op: OpMUL, Cond: CondNone, Dst: RegOp(ECX)}, []byte{0xF7, 0xE1}, "MUL ECX"},
	{Inst{Op: OpDIV, Cond: CondNone, Dst: RegOp(EBX)}, []byte{0xF7, 0xF3}, "DIV EBX"},
	{Inst{Op: OpNEG, Cond: CondNone, Dst: RegOp(EAX)}, []byte{0xF7, 0xD8}, "NEG EAX"},
	{Inst{Op: OpNOT, Cond: CondNone, Dst: RegOp(ESI)}, []byte{0xF7, 0xD6}, "NOT ESI"},
	{Inst{Op: OpXCHG, Cond: CondNone, Dst: RegOp(EAX), Src: RegOp(EBX)},
		[]byte{0x87, 0xD8}, "XCHG EAX, EBX"},
	{Inst{Op: OpCMOV, Cond: CondGE, Dst: RegOp(EAX), Src: RegOp(ECX)},
		[]byte{0x0F, 0x4D, 0xC1}, "CMOVGE EAX, ECX"},
	{Inst{Op: OpPUSH, Cond: CondNone, Dst: ImmOp(0x12345678)},
		[]byte{0x68, 0x78, 0x56, 0x34, 0x12}, "PUSH 0x12345678"},
	{Inst{Op: OpPUSH, Cond: CondNone, Dst: ImmOp(7)}, []byte{0x6A, 0x07}, "PUSH 0x7"},
	{Inst{Op: OpMOV, Cond: CondNone, Dst: Mem(EDI, 0), Src: ImmOp(-1)},
		[]byte{0xC7, 0x07, 0xFF, 0xFF, 0xFF, 0xFF}, "MOV [EDI], -0x1"},
	{Inst{Op: OpMOV, Cond: CondNone, Dst: RegOp(EAX), Src: MemAbs(0x1000)},
		[]byte{0x8B, 0x05, 0x00, 0x10, 0x00, 0x00}, "MOV EAX, [0x1000]"},
}

func TestEncodeGolden(t *testing.T) {
	for _, tt := range goldenTests {
		got, err := Encode(tt.in)
		if err != nil {
			t.Errorf("Encode(%s): %v", tt.str, err)
			continue
		}
		if !bytes.Equal(got, tt.bytes) {
			t.Errorf("Encode(%s) = %X, want %X", tt.str, got, tt.bytes)
		}
	}
}

func TestDecodeGolden(t *testing.T) {
	for _, tt := range goldenTests {
		got, err := Decode(tt.bytes)
		if err != nil {
			t.Errorf("Decode(%X): %v", tt.bytes, err)
			continue
		}
		if got.Len != len(tt.bytes) {
			t.Errorf("Decode(%X).Len = %d, want %d", tt.bytes, got.Len, len(tt.bytes))
		}
		got.Len = 0
		want := tt.in
		// Scale canonicalization: absent index decodes with Scale 1.
		if !instEqual(got, want) {
			t.Errorf("Decode(%X) = %+v, want %+v", tt.bytes, got, want)
		}
	}
}

func TestInstString(t *testing.T) {
	for _, tt := range goldenTests {
		if got := tt.in.String(); got != tt.str {
			t.Errorf("String() = %q, want %q", got, tt.str)
		}
	}
}

func instEqual(a, b Inst) bool {
	a.Len, b.Len = 0, 0
	return a == b
}

func TestTargetPC(t *testing.T) {
	in := Inst{Op: OpJCC, Cond: CondE, Dst: ImmOp(0x15)}
	enc, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	in.Len = len(enc)
	if got, want := in.TargetPC(0x100), uint32(0x100+2+0x15); got != want {
		t.Errorf("TargetPC = %#x, want %#x", got, want)
	}
	back := Inst{Op: OpJMP, Cond: CondNone, Dst: ImmOp(-2), Len: 2}
	if got, want := back.TargetPC(0x200), uint32(0x200); got != want {
		t.Errorf("backward TargetPC = %#x, want %#x", got, want)
	}
}

func TestCondEval(t *testing.T) {
	cases := []struct {
		c    Cond
		f    Flags
		want bool
	}{
		{CondE, FlagZ, true},
		{CondE, 0, false},
		{CondNE, FlagZ, false},
		{CondB, FlagC, true},
		{CondAE, FlagC, false},
		{CondBE, FlagZ, true},
		{CondBE, FlagC, true},
		{CondA, 0, true},
		{CondA, FlagC, false},
		{CondL, FlagS, true},
		{CondL, FlagS | FlagO, false},
		{CondGE, FlagS | FlagO, true},
		{CondLE, FlagZ, true},
		{CondG, 0, true},
		{CondG, FlagZ, false},
		{CondS, FlagS, true},
		{CondNS, FlagS, false},
		{CondO, FlagO, true},
		{CondNO, FlagO, false},
		{CondP, FlagP, true},
		{CondNP, FlagP, false},
		{CondNone, 0, true},
	}
	for _, tt := range cases {
		if got := tt.c.Eval(tt.f); got != tt.want {
			t.Errorf("%s.Eval(%s) = %v, want %v", tt.c, tt.f, got, tt.want)
		}
	}
}

func TestCondNegate(t *testing.T) {
	for c := Cond(0); c < 16; c++ {
		n := c.Negate()
		if n.Negate() != c {
			t.Errorf("double negate of %s = %s", c, n.Negate())
		}
		// A condition and its negation must disagree on every flag setting.
		for trial := 0; trial < 64; trial++ {
			f := Flags(trial) & FlagMask
			if c.Eval(f) == n.Eval(f) {
				t.Errorf("%s and %s agree on flags %s", c, n, f)
			}
		}
	}
}

// randInst generates a random valid instruction of a supported encodable form.
func randInst(r *rand.Rand) Inst {
	regs := []Reg{EAX, ECX, EDX, EBX, ESP, EBP, ESI, EDI}
	reg := func() Reg { return regs[r.Intn(len(regs))] }
	randMem := func() Operand {
		m := MemRef{Base: RegNone, Index: RegNone, Scale: 1}
		switch r.Intn(4) {
		case 0: // [base+disp]
			m.Base = reg()
		case 1: // [base+index*scale+disp]
			m.Base = reg()
			for {
				m.Index = reg()
				if m.Index != ESP {
					break
				}
			}
			m.Scale = 1 << r.Intn(4)
		case 2: // [index*scale+disp]
			for {
				m.Index = reg()
				if m.Index != ESP {
					break
				}
			}
			m.Scale = 1 << r.Intn(4)
		case 3: // [disp32]
		}
		switch r.Intn(3) {
		case 0:
			m.Disp = 0
		case 1:
			m.Disp = int32(int8(r.Uint32()))
		case 2:
			m.Disp = int32(r.Uint32())
		}
		return MemOp(m)
	}
	rm := func() Operand {
		if r.Intn(2) == 0 {
			return RegOp(reg())
		}
		return randMem()
	}
	imm := func() Operand {
		if r.Intn(2) == 0 {
			return ImmOp(int32(int8(r.Uint32())))
		}
		return ImmOp(int32(r.Uint32()))
	}

	aluLike := []Op{OpADD, OpOR, OpADC, OpSBB, OpAND, OpSUB, OpXOR, OpCMP}
	switch r.Intn(16) {
	case 0: // MOV forms
		switch r.Intn(4) {
		case 0:
			return Inst{Op: OpMOV, Cond: CondNone, Dst: RegOp(reg()), Src: imm()}
		case 1:
			return Inst{Op: OpMOV, Cond: CondNone, Dst: randMem(), Src: imm()}
		case 2:
			return Inst{Op: OpMOV, Cond: CondNone, Dst: RegOp(reg()), Src: rm()}
		default:
			return Inst{Op: OpMOV, Cond: CondNone, Dst: randMem(), Src: RegOp(reg())}
		}
	case 1:
		return Inst{Op: OpLEA, Cond: CondNone, Dst: RegOp(reg()), Src: randMem()}
	case 2:
		op := aluLike[r.Intn(len(aluLike))]
		switch r.Intn(3) {
		case 0:
			return Inst{Op: op, Cond: CondNone, Dst: rm(), Src: imm()}
		case 1:
			return Inst{Op: op, Cond: CondNone, Dst: RegOp(reg()), Src: rm()}
		default:
			return Inst{Op: op, Cond: CondNone, Dst: randMem(), Src: RegOp(reg())}
		}
	case 3:
		if r.Intn(2) == 0 {
			return Inst{Op: OpTEST, Cond: CondNone, Dst: rm(), Src: RegOp(reg())}
		}
		return Inst{Op: OpTEST, Cond: CondNone, Dst: rm(), Src: ImmOp(int32(r.Uint32()))}
	case 4:
		ops := []Op{OpINC, OpDEC, OpNEG, OpNOT}
		return Inst{Op: ops[r.Intn(len(ops))], Cond: CondNone, Dst: rm()}
	case 5:
		ops := []Op{OpSHL, OpSHR, OpSAR}
		op := ops[r.Intn(len(ops))]
		switch r.Intn(3) {
		case 0:
			return Inst{Op: op, Cond: CondNone, Dst: rm(), Src: ImmOp(1)}
		case 1:
			return Inst{Op: op, Cond: CondNone, Dst: rm(), Src: ImmOp(int32(1 + r.Intn(31)))}
		default:
			return Inst{Op: op, Cond: CondNone, Dst: rm(), Src: RegOp(ECX)}
		}
	case 6:
		switch r.Intn(3) {
		case 0:
			return Inst{Op: OpIMUL, Cond: CondNone, Dst: rm()}
		case 1:
			return Inst{Op: OpIMUL, Cond: CondNone, Dst: RegOp(reg()), Src: rm()}
		default:
			v := int32(r.Uint32())
			if v == 0 {
				v = 3
			}
			return Inst{Op: OpIMUL, Cond: CondNone, Dst: RegOp(reg()), Src: rm(), Imm3: v}
		}
	case 7:
		ops := []Op{OpMUL, OpDIV, OpIDIV}
		return Inst{Op: ops[r.Intn(len(ops))], Cond: CondNone, Dst: rm()}
	case 8:
		switch r.Intn(3) {
		case 0:
			return Inst{Op: OpPUSH, Cond: CondNone, Dst: RegOp(reg())}
		case 1:
			return Inst{Op: OpPUSH, Cond: CondNone, Dst: imm()}
		default:
			return Inst{Op: OpPUSH, Cond: CondNone, Dst: randMem()}
		}
	case 9:
		if r.Intn(2) == 0 {
			return Inst{Op: OpPOP, Cond: CondNone, Dst: RegOp(reg())}
		}
		return Inst{Op: OpPOP, Cond: CondNone, Dst: randMem()}
	case 10:
		switch r.Intn(3) {
		case 0:
			return Inst{Op: OpJMP, Cond: CondNone, Dst: imm()}
		case 1:
			return Inst{Op: OpJMP, Cond: CondNone, Dst: RegOp(reg())}
		default:
			return Inst{Op: OpJMP, Cond: CondNone, Dst: randMem()}
		}
	case 11:
		return Inst{Op: OpJCC, Cond: Cond(r.Intn(16)), Dst: imm()}
	case 12:
		if r.Intn(2) == 0 {
			return Inst{Op: OpCALL, Cond: CondNone, Dst: ImmOp(int32(r.Uint32()))}
		}
		return Inst{Op: OpCALL, Cond: CondNone, Dst: rm()}
	case 13:
		if r.Intn(2) == 0 {
			return Inst{Op: OpRET, Cond: CondNone}
		}
		return Inst{Op: OpRET, Cond: CondNone, Dst: ImmOp(int32(r.Intn(0x10000)))}
	case 14:
		return Inst{Op: OpCMOV, Cond: Cond(r.Intn(16)), Dst: RegOp(reg()), Src: rm()}
	default:
		ops := []Op{OpNOP, OpCDQ, OpLEAVE, OpHLT, OpXCHG}
		op := ops[r.Intn(len(ops))]
		if op == OpXCHG {
			return Inst{Op: OpXCHG, Cond: CondNone, Dst: rm(), Src: RegOp(reg())}
		}
		return Inst{Op: op, Cond: CondNone}
	}
}

// TestRoundTrip is the encode/decode round-trip property: for every valid
// instruction, Decode(Encode(in)) == in.
func TestRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		in := randInst(r)
		enc, err := Encode(in)
		if err != nil {
			t.Logf("encode error for %+v: %v", in, err)
			return false
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Logf("decode error for %X (%+v): %v", enc, in, err)
			return false
		}
		if dec.Len != len(enc) {
			t.Logf("length mismatch for %X: %d vs %d", enc, dec.Len, len(enc))
			return false
		}
		if !instEqual(dec, in) {
			t.Logf("round trip mismatch: %+v -> %X -> %+v", in, enc, dec)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestDecodeStream checks sequential decoding of a composed function body.
func TestDecodeStream(t *testing.T) {
	prog := []Inst{
		{Op: OpPUSH, Cond: CondNone, Dst: RegOp(EBP)},
		{Op: OpMOV, Cond: CondNone, Dst: RegOp(EBP), Src: RegOp(ESP)},
		{Op: OpSUB, Cond: CondNone, Dst: RegOp(ESP), Src: ImmOp(16)},
		{Op: OpMOV, Cond: CondNone, Dst: RegOp(EAX), Src: Mem(EBP, 8)},
		{Op: OpADD, Cond: CondNone, Dst: RegOp(EAX), Src: ImmOp(1)},
		{Op: OpMOV, Cond: CondNone, Dst: Mem(EBP, -4), Src: RegOp(EAX)},
		{Op: OpLEAVE, Cond: CondNone},
		{Op: OpRET, Cond: CondNone},
	}
	var code []byte
	for _, in := range prog {
		enc, err := Encode(in)
		if err != nil {
			t.Fatal(err)
		}
		code = append(code, enc...)
	}
	pos := 0
	for i, want := range prog {
		got, err := Decode(code[pos:])
		if err != nil {
			t.Fatalf("inst %d: %v", i, err)
		}
		pos += got.Len
		if !instEqual(got, want) {
			t.Errorf("inst %d: got %s, want %s", i, got, want)
		}
	}
	if pos != len(code) {
		t.Errorf("consumed %d of %d bytes", pos, len(code))
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		{},                 // empty
		{0x8B},             // MOV missing ModRM
		{0x8B, 0x45},       // missing disp8
		{0xB8, 0x01, 0x02}, // truncated imm32
		{0x0F},             // truncated two-byte opcode
		{0x0F, 0xFF},       // unknown two-byte opcode
		{0xD8},             // x87, unsupported
		{0x8F, 0x48, 0x00}, // POP with bad /digit
	}
	for _, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("Decode(%X) succeeded, want error", c)
		}
	}
}

func TestRegString(t *testing.T) {
	if EAX.String() != "EAX" || EDI.String() != "EDI" || RegNone.String() != "-" {
		t.Error("register names wrong")
	}
	for r := Reg(0); r < NumGPR; r++ {
		if !r.Valid() {
			t.Errorf("%s not valid", r)
		}
	}
	if RegNone.Valid() {
		t.Error("RegNone should not be valid")
	}
}

func TestFlagsString(t *testing.T) {
	if got := (FlagC | FlagZ).String(); got != "C-Z--" {
		t.Errorf("Flags string = %q", got)
	}
}

func TestMemRefString(t *testing.T) {
	cases := []struct {
		m    MemRef
		want string
	}{
		{MemRef{Base: ESP, Index: RegNone, Scale: 1, Disp: 12}, "[ESP+0xC]"},
		{MemRef{Base: EBP, Index: RegNone, Scale: 1, Disp: -4}, "[EBP-0x4]"},
		{MemRef{Base: EBX, Index: ESI, Scale: 4, Disp: 0}, "[EBX+ESI*4]"},
		{MemRef{Base: RegNone, Index: RegNone, Scale: 1, Disp: 0x1000}, "[0x1000]"},
	}
	for _, tt := range cases {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("MemRef.String() = %q, want %q", got, tt.want)
		}
	}
}

func ExampleDecode() {
	in, _ := Decode([]byte{0x8B, 0x4C, 0x24, 0x0C})
	fmt.Println(in)
	// Output: MOV ECX, [ESP+0xC]
}
