package xtrace

import (
	"fmt"

	"repro/internal/pipeline"
	"repro/internal/translate"
	"repro/internal/uop"
	"repro/internal/x86"
)

// Slots materializes the trace as engine-ready retired slots — the same
// abstraction the capture/replay layer feeds the pipeline, so the frame
// cache and optimizer run on external traces unmodified.
//
// Traces with an embedded code image take the exact path: every EIP is
// decoded and translated from the code bytes (deterministic, so an
// exported capture round-trips bit-identically). Traces without one take
// the synthesis path: each record class maps to a canonical micro-op and
// each instruction group to a canonical x86 instruction. The timing
// model never evaluates micro-op values — dataflow timing uses register
// indices and control divergence is detected by PC comparison — so
// synthesized flows exercise the pipeline, frame constructor, and
// optimizer exactly like interpreted ones.
func (t *Trace) Slots() ([]pipeline.Slot, error) {
	groups, err := t.groups()
	if err != nil {
		return nil, err
	}
	if len(t.Code) > 0 {
		return t.codeSlots(groups)
	}
	return t.synthSlots(groups), nil
}

// group is one macro-instruction of the record stream: the half-open
// record range [lo,hi) sharing an EIP.
type group struct {
	lo, hi int
	eip    uint32
	taken  bool
}

func (t *Trace) groups() ([]group, error) {
	var gs []group
	for i := range t.Records {
		r := &t.Records[i]
		if r.First() {
			gs = append(gs, group{lo: i, hi: i + 1, eip: r.EIP})
		} else {
			g := &gs[len(gs)-1] // validate() guarantees record 0 is a first
			if r.EIP != g.eip {
				return nil, fmt.Errorf("%w: record %d changes EIP %#x -> %#x mid-instruction",
					ErrMalformed, i, g.eip, r.EIP)
			}
			g.hi = i + 1
		}
		if r.Taken() {
			gs[len(gs)-1].taken = true
		}
	}
	return gs, nil
}

// memAddrs collects the group's record addresses in flow order (nil when
// none, matching the capture layer's columnar representation).
func (t *Trace) memAddrs(g group) []uint32 {
	var addrs []uint32
	for i := g.lo; i < g.hi; i++ {
		if t.Records[i].HasAddr() {
			addrs = append(addrs, t.Records[i].Addr)
		}
	}
	return addrs
}

// codeSlots re-decodes every instruction from the embedded image. The
// successor of each slot is the next group's EIP; the last slot's comes
// from the end-of-stream sentinel, falling back to the decoded
// fall-through (or direct-branch target) when the sentinel is absent.
func (t *Trace) codeSlots(groups []group) ([]pipeline.Slot, error) {
	insts := make(map[uint32]x86.Inst)
	uopsOf := make(map[uint32][]uop.UOp)
	slots := make([]pipeline.Slot, 0, len(groups))
	for gi, g := range groups {
		in, ok := insts[g.eip]
		var us []uop.UOp
		if ok {
			us = uopsOf[g.eip]
		} else {
			if g.eip < t.CodeBase || g.eip >= t.CodeBase+uint32(len(t.Code)) {
				return nil, fmt.Errorf("%w: record %d EIP %#x outside code image [%#x,%#x)",
					ErrInconsistent, g.lo, g.eip, t.CodeBase, t.CodeBase+uint32(len(t.Code)))
			}
			var err error
			in, err = x86.Decode(t.Code[g.eip-t.CodeBase:])
			if err != nil {
				return nil, fmt.Errorf("%w: record %d EIP %#x: %v", ErrInconsistent, g.lo, g.eip, err)
			}
			us, err = translate.UOps(in, g.eip)
			if err != nil {
				return nil, fmt.Errorf("%w: record %d EIP %#x: %v", ErrInconsistent, g.lo, g.eip, err)
			}
			insts[g.eip] = in
			uopsOf[g.eip] = us
		}
		// The record grouping must agree with the translation: one record
		// per cracked micro-op, and no more address-carrying records than
		// the flow has memory micro-ops (exporters may legitimately omit
		// addresses, so fewer is fine). A mismatch would silently feed the
		// pipeline a flow whose MemAddrs pair with the wrong micro-ops.
		if nrec := g.hi - g.lo; nrec != len(us) {
			return nil, fmt.Errorf("%w: record %d EIP %#x: %d records for an instruction that cracks into %d micro-ops",
				ErrInconsistent, g.lo, g.eip, nrec, len(us))
		}
		memUops := 0
		for _, u := range us {
			if u.Op.IsMem() {
				memUops++
			}
		}
		addrRecs := 0
		for i := g.lo; i < g.hi; i++ {
			if t.Records[i].HasAddr() {
				addrRecs++
			}
		}
		if addrRecs > memUops {
			return nil, fmt.Errorf("%w: record %d EIP %#x: %d address-carrying records for an instruction with %d memory micro-ops",
				ErrInconsistent, g.lo, g.eip, addrRecs, memUops)
		}
		var next uint32
		switch {
		case gi+1 < len(groups):
			next = groups[gi+1].eip
		case t.HasFinal:
			next = t.FinalPC
		case g.taken && in.IsBranch() && in.Dst.Kind == x86.KindImm:
			next = in.TargetPC(g.eip)
		default:
			next = g.eip + uint32(in.Len)
		}
		slots = append(slots, pipeline.Slot{
			PC: g.eip, Inst: in, UOps: us, NextPC: next, MemAddrs: t.memAddrs(g),
		})
	}
	return slots, nil
}

// synthRegs are the GPRs the synthesis path rotates through for operand
// assignment — ESP/EBP excluded so synthesized flows don't collide with
// anything stack-shaped the frame heuristics might care about.
var synthRegs = [6]uop.Reg{uop.EAX, uop.EBX, uop.ECX, uop.EDX, uop.ESI, uop.EDI}

func synthReg(eip uint32, salt int) uop.Reg {
	return synthRegs[(uint32(salt)+eip*2654435761)%uint32(len(synthRegs))]
}

// synthDecoded is the per-PC synthesized decode. Like a real decode it
// is a pure function of the (first-seen) static properties of the PC, so
// repeated visits share one instruction identity — which the frame
// cache's PC-comparison replay discipline requires.
type synthDecoded struct {
	in   x86.Inst
	uops []uop.UOp
}

// synthSlots fabricates a canonical instruction per group. Per-PC decode
// is first-wins: the first dynamic occurrence of an EIP fixes its
// instruction shape, and the instruction length is chosen so the
// taken-vs-fallthrough relation (NextPC != PC+Len exactly when taken)
// holds for the observed successor pattern.
func (t *Trace) synthSlots(groups []group) []pipeline.Slot {
	// Pass 1: pick a static Len per PC. A non-taken occurrence fixes it
	// exactly (Len = successor delta); otherwise default to 1, bumping to
	// 2 when a taken successor happens to land on PC+1.
	lens := make(map[uint32]uint32)
	takenNext := make(map[uint32]uint32)
	for gi, g := range groups {
		var next uint32
		if gi+1 < len(groups) {
			next = groups[gi+1].eip
		} else if t.HasFinal {
			next = t.FinalPC
		} else {
			continue
		}
		delta := next - g.eip
		if !g.taken {
			if _, ok := lens[g.eip]; !ok && delta >= 1 && delta <= 15 {
				lens[g.eip] = delta
			}
		} else {
			if _, ok := takenNext[g.eip]; !ok {
				takenNext[g.eip] = next
			}
		}
	}
	lenOf := func(eip uint32) uint32 {
		if l, ok := lens[eip]; ok {
			return l
		}
		l := uint32(1)
		if tn, ok := takenNext[eip]; ok && tn == eip+l {
			l = 2
		}
		lens[eip] = l
		return l
	}

	// Pass 2: synthesize the per-PC decode and materialize slots.
	decoded := make(map[uint32]synthDecoded)
	slots := make([]pipeline.Slot, 0, len(groups))
	for gi, g := range groups {
		d, ok := decoded[g.eip]
		if !ok {
			d = t.synthDecode(g, lenOf(g.eip), takenNext[g.eip])
			decoded[g.eip] = d
		}
		var next uint32
		switch {
		case gi+1 < len(groups):
			next = groups[gi+1].eip
		case t.HasFinal:
			next = t.FinalPC
		case g.taken:
			next = g.eip // any successor != PC+Len keeps the taken relation
		default:
			next = g.eip + uint32(d.in.Len)
		}
		slots = append(slots, pipeline.Slot{
			PC: g.eip, Inst: d.in, UOps: d.uops, NextPC: next, MemAddrs: t.memAddrs(g),
		})
	}
	return slots
}

// synthDecode fabricates the instruction and micro-op flow for one PC
// from its first dynamic occurrence.
func (t *Trace) synthDecode(g group, length uint32, takenNext uint32) synthDecoded {
	var us []uop.UOp
	dominant := ClassExec
	for i := g.lo; i < g.hi; i++ {
		r := &t.Records[i]
		salt := i - g.lo
		switch r.Class {
		case ClassLoad:
			us = append(us, uop.UOp{Op: uop.LOAD,
				Dest: synthReg(g.eip, salt), SrcA: synthReg(g.eip, salt+1), SrcB: uop.RegNone})
			if dominant == ClassExec {
				dominant = ClassLoad
			}
		case ClassStore:
			us = append(us, uop.UOp{Op: uop.STORE,
				Dest: uop.RegNone, SrcA: synthReg(g.eip, salt), SrcB: synthReg(g.eip, salt+1)})
			if dominant == ClassExec || dominant == ClassLoad {
				dominant = ClassStore
			}
		case ClassBranch:
			target := takenNext
			if target == 0 {
				target = g.eip + length
			}
			us = append(us, uop.UOp{Op: uop.BR, Cond: x86.CondNE,
				Dest: uop.RegNone, SrcA: uop.RegNone, SrcB: uop.RegNone, Imm: int32(target)})
			dominant = ClassBranch
		case ClassSync:
			us = append(us, uop.UOp{Op: uop.NOP,
				Dest: uop.RegNone, SrcA: uop.RegNone, SrcB: uop.RegNone})
			if dominant == ClassExec && g.hi-g.lo == 1 {
				dominant = ClassSync
			}
		default: // ClassExec
			us = append(us, uop.UOp{Op: uop.ADD, WritesFlags: true,
				Dest: synthReg(g.eip, salt), SrcA: synthReg(g.eip, salt), SrcB: synthReg(g.eip, salt+1)})
		}
	}
	in := synthInst(g.eip, dominant, length, takenNext)
	return synthDecoded{in: in, uops: us}
}

// synthInst fabricates the x86-level identity of a synthesized
// instruction. Only its static classification matters (the frame
// constructor reads Op/Cond/Dst.Kind/Len; nothing executes it).
func synthInst(eip uint32, dominant Class, length uint32, takenNext uint32) x86.Inst {
	in := x86.Inst{Cond: x86.CondNone, Len: int(length)}
	a, b := x86.Reg(synthReg(eip, 0)), x86.Reg(synthReg(eip, 1))
	switch dominant {
	case ClassBranch:
		in.Op = x86.OpJCC
		in.Cond = x86.CondNE
		target := takenNext
		if target == 0 {
			target = eip + length
		}
		in.Dst = x86.ImmOp(int32(target - (eip + length)))
	case ClassStore:
		in.Op = x86.OpMOV
		in.Dst = x86.Mem(a, 0)
		in.Src = x86.RegOp(b)
	case ClassLoad:
		in.Op = x86.OpMOV
		in.Dst = x86.RegOp(a)
		in.Src = x86.Mem(b, 0)
	case ClassSync:
		in.Op = x86.OpNOP
	default:
		in.Op = x86.OpADD
		in.Dst = x86.RegOp(a)
		in.Src = x86.RegOp(b)
	}
	return in
}
