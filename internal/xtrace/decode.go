package xtrace

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// limitedReader counts consumed bytes and refuses to read past max,
// letting the decoder distinguish "stream too large" (ErrLimit) from
// "stream ended early" (ErrTruncated).
type limitedReader struct {
	r       io.Reader
	n       int64 // bytes remaining
	clipped bool  // the cap was hit
}

func (l *limitedReader) Read(p []byte) (int, error) {
	if l.clipped {
		return 0, io.EOF
	}
	if l.n <= 0 {
		// Budget spent. A stream of exactly MaxBytes must still decode,
		// so the cap only counts as hit if another byte actually
		// materializes: probe the source before deciding. A source that
		// errors here instead of reporting EOF (http.MaxBytesReader at
		// its own limit) also means there was more than the budget.
		var probe [1]byte
		n, err := l.r.Read(probe[:])
		if n > 0 || (err != nil && err != io.EOF) {
			l.clipped = true
		}
		return 0, io.EOF
	}
	if int64(len(p)) > l.n {
		p = p[:l.n]
	}
	n, err := l.r.Read(p)
	l.n -= int64(n)
	return n, err
}

// eofErr maps an unexpected end of input to the right typed error.
func (l *limitedReader) eofErr(context string) error {
	if l.clipped {
		return fmt.Errorf("%w: %s", ErrLimit, "stream larger than the byte budget")
	}
	return fmt.Errorf("%w: %s", ErrTruncated, context)
}

// Decode reads one external trace in either encoding, auto-detected from
// the first byte ('x' = binary, '{' = NDJSON). The zero Limits value
// means DefaultLimits. Every failure wraps one of the package's typed
// errors; Decode never panics on malformed input.
func Decode(r io.Reader, lim Limits) (*Trace, error) {
	lim = lim.withDefaults()
	lr := &limitedReader{r: r, n: lim.MaxBytes}
	br := bufio.NewReader(lr)
	first, err := br.Peek(1)
	if err != nil {
		return nil, lr.eofErr("empty stream")
	}
	var t *Trace
	switch first[0] {
	case Magic[0]:
		t, err = decodeBinary(br, lr, lim)
	case '{':
		t, err = decodeNDJSON(br, lr, lim)
	default:
		return nil, fmt.Errorf("%w: leading byte %#x", ErrBadMagic, first[0])
	}
	if err != nil {
		return nil, err
	}
	return t, validate(t)
}

// validate applies the cross-record structural rules shared by both
// encodings and normalizes the first-of-instruction convention.
func validate(t *Trace) error {
	if len(t.Records) == 0 {
		return fmt.Errorf("%w: trace has no records", ErrMalformed)
	}
	anyFirst := false
	for i := range t.Records {
		if t.Records[i].First() {
			anyFirst = true
			break
		}
	}
	if !anyFirst {
		// One-uop-per-instruction stream: every record starts one.
		for i := range t.Records {
			t.Records[i].Flags |= RecFirst
		}
	} else if !t.Records[0].First() {
		return fmt.Errorf("%w: record 0 continues an instruction that was never started", ErrMalformed)
	}
	if t.Header.UOps != 0 && t.Header.UOps != uint64(len(t.Records)) {
		return fmt.Errorf("%w: header declares %d uops, stream carries %d",
			ErrMalformed, t.Header.UOps, len(t.Records))
	}
	t.Header.UOps = uint64(len(t.Records))
	if len(t.Code) > 0 {
		t.Header.Flags |= FlagHasCode
	} else if t.Header.HasCode() {
		return fmt.Errorf("%w: has-code flag set but no code image", ErrMalformed)
	}
	return nil
}

func decodeBinary(br *bufio.Reader, lr *limitedReader, lim Limits) (*Trace, error) {
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, lr.eofErr("header magic")
	}
	if magic != Magic {
		return nil, fmt.Errorf("%w: %q", ErrBadMagic, magic[:])
	}
	var u32b [4]byte
	readU32 := func(what string) (uint32, error) {
		if _, err := io.ReadFull(br, u32b[:]); err != nil {
			return 0, lr.eofErr(what)
		}
		return binary.LittleEndian.Uint32(u32b[:]), nil
	}
	t := &Trace{}
	v, err := readU32("header version")
	if err != nil {
		return nil, err
	}
	if v != FormatVersion {
		return nil, fmt.Errorf("%w: %d (want %d)", ErrBadVersion, v, FormatVersion)
	}
	t.Header.Version = v
	var u16b [2]byte
	if _, err := io.ReadFull(br, u16b[:]); err != nil {
		return nil, lr.eofErr("name length")
	}
	nameLen := binary.LittleEndian.Uint16(u16b[:])
	if nameLen > maxNameLen {
		return nil, fmt.Errorf("%w: name length %d > %d", ErrMalformed, nameLen, maxNameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, lr.eofErr("name")
	}
	t.Header.Name = string(name)
	archLen, err := br.ReadByte()
	if err != nil {
		return nil, lr.eofErr("arch length")
	}
	if archLen > maxArchLen {
		return nil, fmt.Errorf("%w: arch length %d > %d", ErrMalformed, archLen, maxArchLen)
	}
	arch := make([]byte, archLen)
	if _, err := io.ReadFull(br, arch); err != nil {
		return nil, lr.eofErr("arch")
	}
	t.Header.Arch = string(arch)
	if t.Header.Flags, err = readU32("header flags"); err != nil {
		return nil, err
	}
	var u64b [8]byte
	if _, err := io.ReadFull(br, u64b[:]); err != nil {
		return nil, lr.eofErr("uop count")
	}
	t.Header.UOps = binary.LittleEndian.Uint64(u64b[:])
	if t.Header.UOps > lim.MaxRecords {
		return nil, fmt.Errorf("%w: header declares %d uops (cap %d)",
			ErrLimit, t.Header.UOps, lim.MaxRecords)
	}
	if t.Header.Insts, err = readU32("inst budget"); err != nil {
		return nil, err
	}
	if t.Header.HasCode() {
		if t.CodeBase, err = readU32("code base"); err != nil {
			return nil, err
		}
		codeLen, err := readU32("code length")
		if err != nil {
			return nil, err
		}
		if int64(codeLen) > int64(lim.MaxCodeBytes) {
			return nil, fmt.Errorf("%w: code image %d bytes (cap %d)",
				ErrLimit, codeLen, lim.MaxCodeBytes)
		}
		t.Code = make([]byte, codeLen)
		if _, err := io.ReadFull(br, t.Code); err != nil {
			return nil, lr.eofErr("code image")
		}
	}
	if t.Header.UOps > 0 {
		// Preallocate from the header count, but only up to what the
		// remaining byte budget can actually carry: the count is
		// attacker-controlled, and a 40-byte stream declaring 2^26 uops
		// must not command a gigabyte before a single record is read.
		prealloc := t.Header.UOps
		if carry := (uint64(lr.n) + uint64(br.Buffered())) / MinRecordBytes; carry < prealloc {
			prealloc = carry
		}
		t.Records = make([]Record, 0, prealloc)
	}
	var payload [maxRecLen]byte
	for i := uint64(0); ; i++ {
		n, err := br.ReadByte()
		if err == io.EOF && !lr.clipped {
			break // clean end of stream
		}
		if err != nil {
			return nil, lr.eofErr(fmt.Sprintf("record %d length", i))
		}
		if n < 6 || n > maxRecLen {
			return nil, fmt.Errorf("%w: record %d length %d (want 6..%d)",
				ErrMalformed, i, n, maxRecLen)
		}
		p := payload[:n]
		if _, err := io.ReadFull(br, p); err != nil {
			return nil, lr.eofErr(fmt.Sprintf("record %d payload", i))
		}
		r := Record{Flags: p[0], Class: Class(p[1]), EIP: binary.LittleEndian.Uint32(p[2:6])}
		if r.Class >= numClasses {
			return nil, fmt.Errorf("%w: record %d class %d", ErrBadClass, i, uint8(r.Class))
		}
		if r.HasAddr() {
			if n < 11 {
				return nil, fmt.Errorf("%w: record %d has-addr flag with %d-byte payload",
					ErrMalformed, i, n)
			}
			r.Addr = binary.LittleEndian.Uint32(p[6:10])
			r.Size = p[10]
		}
		if r.Flags&RecEOS != 0 {
			if t.HasFinal {
				return nil, fmt.Errorf("%w: record %d is a second end-of-stream sentinel", ErrMalformed, i)
			}
			t.FinalPC, t.HasFinal = r.EIP, true
			continue
		}
		if t.HasFinal {
			return nil, fmt.Errorf("%w: record %d follows the end-of-stream sentinel", ErrMalformed, i)
		}
		if uint64(len(t.Records)) >= lim.MaxRecords {
			return nil, fmt.Errorf("%w: more than %d records", ErrLimit, lim.MaxRecords)
		}
		t.Records = append(t.Records, r)
	}
	return t, nil
}

// maxLineBytes bounds one NDJSON line. The header line carries the
// base64 code image, so it scales with the code cap; record lines are
// tiny.
func maxLineBytes(lim Limits) int {
	n := lim.MaxCodeBytes/3*4 + 4096
	return n
}

func decodeNDJSON(br *bufio.Reader, lr *limitedReader, lim Limits) (*Trace, error) {
	line, err := readLine(br, lr, maxLineBytes(lim), "header")
	if err != nil {
		return nil, err
	}
	var h jsonHeader
	if err := json.Unmarshal(line, &h); err != nil {
		return nil, fmt.Errorf("%w: header line: %v", ErrMalformed, err)
	}
	if h.Magic != "xuop" {
		return nil, fmt.Errorf("%w: header magic %q", ErrBadMagic, h.Magic)
	}
	if h.Version != FormatVersion {
		return nil, fmt.Errorf("%w: %d (want %d)", ErrBadVersion, h.Version, FormatVersion)
	}
	if len(h.Name) > maxNameLen {
		return nil, fmt.Errorf("%w: name length %d > %d", ErrMalformed, len(h.Name), maxNameLen)
	}
	if len(h.Arch) > maxArchLen {
		return nil, fmt.Errorf("%w: arch length %d > %d", ErrMalformed, len(h.Arch), maxArchLen)
	}
	if h.UOps > lim.MaxRecords {
		return nil, fmt.Errorf("%w: header declares %d uops (cap %d)", ErrLimit, h.UOps, lim.MaxRecords)
	}
	t := &Trace{Header: Header{
		Version: h.Version, Name: h.Name, Arch: h.Arch,
		Flags: h.Flags, UOps: h.UOps, Insts: h.Insts,
	}}
	if h.Code != "" {
		code, err := base64.StdEncoding.DecodeString(h.Code)
		if err != nil {
			return nil, fmt.Errorf("%w: code image base64: %v", ErrMalformed, err)
		}
		if len(code) > lim.MaxCodeBytes {
			return nil, fmt.Errorf("%w: code image %d bytes (cap %d)", ErrLimit, len(code), lim.MaxCodeBytes)
		}
		t.CodeBase, t.Code = h.CodeBase, code
	}
	for i := uint64(0); ; i++ {
		line, err := readLine(br, lr, maxLineBytes(lim), fmt.Sprintf("record %d", i))
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var jr jsonRecord
		if err := json.Unmarshal(line, &jr); err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrMalformed, i, err)
		}
		if jr.EIP == nil {
			return nil, fmt.Errorf("%w: record %d has no eip", ErrMalformed, i)
		}
		if jr.EOS {
			if t.HasFinal {
				return nil, fmt.Errorf("%w: record %d is a second end-of-stream sentinel", ErrMalformed, i)
			}
			t.FinalPC, t.HasFinal = *jr.EIP, true
			continue
		}
		if t.HasFinal {
			return nil, fmt.Errorf("%w: record %d follows the end-of-stream sentinel", ErrMalformed, i)
		}
		r := Record{EIP: *jr.EIP}
		if jr.Class != "" {
			c, err := ParseClass(jr.Class)
			if err != nil {
				return nil, fmt.Errorf("record %d: %w", i, err)
			}
			r.Class = c
		}
		if jr.Taken {
			r.Flags |= RecTaken
		}
		if jr.First == nil || *jr.First {
			r.Flags |= RecFirst
		}
		if jr.Addr != nil {
			r.Flags |= RecHasAddr
			r.Addr = *jr.Addr
			r.Size = jr.Size // size is meaningful only with an address
			if r.Size == 0 {
				r.Size = 4
			}
		}
		if uint64(len(t.Records)) >= lim.MaxRecords {
			return nil, fmt.Errorf("%w: more than %d records", ErrLimit, lim.MaxRecords)
		}
		t.Records = append(t.Records, r)
	}
	return t, nil
}

// readLine reads one newline-terminated line (the final line may omit
// the newline), accumulating buffer-sized fragments so an overlong line
// fails with ErrLimit as soon as it crosses maxLen instead of after the
// whole line has been buffered. It returns io.EOF only on a clean end
// of input with no bytes read.
func readLine(br *bufio.Reader, lr *limitedReader, maxLen int, what string) ([]byte, error) {
	var line []byte
	for {
		frag, err := br.ReadSlice('\n')
		line = append(line, frag...)
		if len(line) > maxLen {
			return nil, fmt.Errorf("%w: %s line is %d bytes (cap %d)", ErrLimit, what, len(line), maxLen)
		}
		switch err {
		case nil:
			return line, nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			if lr.clipped {
				return nil, lr.eofErr(what)
			}
			if len(line) == 0 {
				return nil, io.EOF
			}
			return line, nil // unterminated final line
		default:
			return nil, fmt.Errorf("%w: %s: %v", ErrMalformed, what, err)
		}
	}
}
