package xtrace

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/trace"
	"repro/internal/translate"
	"repro/internal/uop"
	"repro/internal/x86"
)

// FromSlotStream converts a captured retired-slot stream into an
// external trace with an embedded code image, emitting one record per
// translated micro-op. insts is the intended instruction budget (0 means
// the whole stream is the budget); the stream is expected to carry slack
// slots beyond it (FlagPadded is set when it does). The result
// round-trips: adapting it back to slots reproduces the capture
// bit-identically, because decode/translation are deterministic
// functions of the code bytes.
func FromSlotStream(ss *trace.SlotStream, insts int) (*Trace, error) {
	t := &Trace{
		Header: Header{
			Version: FormatVersion,
			Name:    ss.Name,
			Arch:    ArchIA32,
			Flags:   FlagHasCode,
		},
		CodeBase: ss.CodeBase,
		Code:     ss.Code,
	}
	if insts > 0 && insts <= len(ss.Slots) {
		t.Header.Insts = uint32(insts)
		if insts < len(ss.Slots) {
			t.Header.Flags |= FlagPadded
		}
	}
	uops := make(map[uint32][]uop.UOp)
	lens := make(map[uint32]uint32)
	for i := range ss.Slots {
		s := &ss.Slots[i]
		us, ok := uops[s.PC]
		if !ok {
			b := ss.InstBytes(s.PC)
			if b == nil {
				return nil, fmt.Errorf("xtrace: slot %d PC %#x outside the code image", i, s.PC)
			}
			in, err := x86.Decode(b)
			if err != nil {
				return nil, fmt.Errorf("xtrace: slot %d PC %#x: %w", i, s.PC, err)
			}
			us, err = translate.UOps(in, s.PC)
			if err != nil {
				return nil, fmt.Errorf("xtrace: slot %d PC %#x: %w", i, s.PC, err)
			}
			uops[s.PC] = us
			lens[s.PC] = uint32(in.Len)
		}
		taken := s.NextPC != s.PC+lens[s.PC]
		mem := 0
		for ui, u := range us {
			r := Record{EIP: s.PC, Class: classOf(u.Op)}
			if ui == 0 {
				r.Flags |= RecFirst
			}
			if u.Op.IsMem() && mem < len(s.MemAddrs) {
				r.Flags |= RecHasAddr
				r.Addr = s.MemAddrs[mem]
				r.Size = 4
				mem++
			}
			if taken && r.Class == ClassBranch {
				r.Flags |= RecTaken
			}
			t.Records = append(t.Records, r)
		}
		if i == len(ss.Slots)-1 {
			t.FinalPC = s.NextPC
			t.HasFinal = true
		}
	}
	t.Header.UOps = uint64(len(t.Records))
	return t, nil
}

// classOf maps a micro-op opcode to its record class.
func classOf(o uop.Op) Class {
	switch {
	case o == uop.LOAD:
		return ClassLoad
	case o == uop.STORE:
		return ClassStore
	case o == uop.JMP || o == uop.JR || o == uop.BR:
		return ClassBranch
	case o == uop.NOP:
		return ClassSync
	default:
		return ClassExec
	}
}

// WriteBinary writes the trace in the length-prefixed binary encoding.
// This is the canonical form: content addressing hashes these bytes.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(Magic[:]); err != nil {
		return err
	}
	var u32 [4]byte
	putU32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		bw.Write(u32[:])
	}
	putU32(FormatVersion)
	name := t.Header.Name
	if len(name) > maxNameLen {
		name = name[:maxNameLen]
	}
	arch := t.Header.Arch
	if len(arch) > maxArchLen {
		arch = arch[:maxArchLen]
	}
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(name)))
	bw.Write(u16[:])
	bw.WriteString(name)
	bw.WriteByte(uint8(len(arch)))
	bw.WriteString(arch)
	flags := t.Header.Flags &^ uint32(FlagHasCode)
	if len(t.Code) > 0 {
		flags |= FlagHasCode
	}
	putU32(flags)
	var u64b [8]byte
	binary.LittleEndian.PutUint64(u64b[:], uint64(len(t.Records)))
	bw.Write(u64b[:])
	putU32(t.Header.Insts)
	if flags&FlagHasCode != 0 {
		putU32(t.CodeBase)
		putU32(uint32(len(t.Code)))
		bw.Write(t.Code)
	}
	for i := range t.Records {
		writeBinaryRecord(bw, &t.Records[i])
	}
	if t.HasFinal {
		eos := Record{EIP: t.FinalPC, Class: ClassSync, Flags: RecEOS}
		writeBinaryRecord(bw, &eos)
	}
	return bw.Flush()
}

func writeBinaryRecord(bw *bufio.Writer, r *Record) {
	n := byte(6)
	if r.HasAddr() {
		n = 11
	}
	bw.WriteByte(n)
	bw.WriteByte(r.Flags)
	bw.WriteByte(uint8(r.Class))
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], r.EIP)
	bw.Write(u32[:])
	if r.HasAddr() {
		binary.LittleEndian.PutUint32(u32[:], r.Addr)
		bw.Write(u32[:])
		bw.WriteByte(r.Size)
	}
}

// jsonHeader is the NDJSON header line. FlagHasCode is implied by a
// non-empty code field, so hand-written traces never set flag bits.
type jsonHeader struct {
	Magic    string `json:"magic"`
	Version  uint32 `json:"version"`
	Name     string `json:"name,omitempty"`
	Arch     string `json:"arch,omitempty"`
	Flags    uint32 `json:"flags,omitempty"`
	UOps     uint64 `json:"uops,omitempty"`
	Insts    uint32 `json:"insts,omitempty"`
	CodeBase uint32 `json:"code_base,omitempty"`
	Code     string `json:"code,omitempty"` // base64(code image)
}

// jsonRecord is one NDJSON record line. "first" defaults to true when
// omitted, so a hand-written one-line-per-instruction trace needs only
// eip/class (+ addr/size, taken).
type jsonRecord struct {
	EIP   *uint32 `json:"eip"`
	Class string  `json:"class,omitempty"`
	Addr  *uint32 `json:"addr,omitempty"`
	Size  uint8   `json:"size,omitempty"`
	Taken bool    `json:"taken,omitempty"`
	First *bool   `json:"first,omitempty"`
	EOS   bool    `json:"eos,omitempty"`
}

// WriteNDJSON writes the trace in the NDJSON encoding: one header
// object, then one object per record, newline-delimited.
func WriteNDJSON(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	h := jsonHeader{
		Magic:   "xuop",
		Version: FormatVersion,
		Name:    t.Header.Name,
		Arch:    t.Header.Arch,
		Flags:   t.Header.Flags &^ uint32(FlagHasCode),
		UOps:    uint64(len(t.Records)),
		Insts:   t.Header.Insts,
	}
	if len(t.Code) > 0 {
		h.CodeBase = t.CodeBase
		h.Code = base64.StdEncoding.EncodeToString(t.Code)
	}
	if err := enc.Encode(h); err != nil {
		return err
	}
	f := false
	for i := range t.Records {
		r := &t.Records[i]
		jr := jsonRecord{EIP: &r.EIP, Class: r.Class.String(), Size: r.Size, Taken: r.Taken()}
		if r.HasAddr() {
			jr.Addr = &r.Addr
		}
		if !r.First() {
			jr.First = &f
		}
		if err := enc.Encode(jr); err != nil {
			return err
		}
	}
	if t.HasFinal {
		if err := enc.Encode(jsonRecord{EIP: &t.FinalPC, EOS: true}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// CanonicalBytes returns the canonical (binary) encoding of the trace,
// the byte string content addressing hashes.
func CanonicalBytes(t *Trace) []byte {
	var buf bytes.Buffer
	WriteBinary(&buf, t) // bytes.Buffer writes cannot fail
	return buf.Bytes()
}
