package xtrace

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecode drives the streaming decoder with corrupt, truncated, and
// mutated inputs. The invariant is total: Decode either returns a trace
// or a typed error — it never panics, and a successfully decoded trace
// re-encodes and re-decodes to the same record stream.
func FuzzDecode(f *testing.F) {
	// Valid binary and NDJSON encodings as mutation bases.
	tr := tinyTrace()
	var bin bytes.Buffer
	WriteBinary(&bin, tr)
	f.Add(bin.Bytes())
	var nd bytes.Buffer
	WriteNDJSON(&nd, tr)
	f.Add(nd.Bytes())

	// Corrupt headers.
	f.Add([]byte{})
	f.Add([]byte("x"))
	f.Add([]byte("xuop"))
	f.Add([]byte("xuop\x02\x00\x00\x00"))         // bad version
	f.Add([]byte("xuop\x01\x00\x00\x00\xff\xff")) // oversize name length
	f.Add(bin.Bytes()[:len(bin.Bytes())/2])       // truncated mid-stream
	f.Add(bin.Bytes()[:17])                       // truncated mid-header
	huge := append([]byte(nil), bin.Bytes()...)
	binary.LittleEndian.PutUint64(huge[23:], 1<<60) // absurd uop count
	f.Add(huge)

	// Corrupt records.
	badClass := append([]byte(nil), bin.Bytes()...)
	badClass[len(badClass)-5] = 0xEE
	f.Add(badClass)
	f.Add([]byte(`{"magic":"xuop","version":1}` + "\n" + `{"eip":1,"class":"zap"}`))
	f.Add([]byte(`{"magic":"xuop","version":1}` + "\n" + `not json at all`))
	f.Add([]byte(`{"magic":"xuop","version":1,"code":"!!!"}` + "\n" + `{"eip":1}`))

	lim := Limits{MaxRecords: 4096, MaxBytes: 1 << 20, MaxCodeBytes: 1 << 16}
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := Decode(bytes.NewReader(data), lim)
		if err != nil {
			return
		}
		// Accepted input: it must re-encode and re-decode identically.
		var buf bytes.Buffer
		if err := WriteBinary(&buf, dec); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := Decode(&buf, lim)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again.Records) != len(dec.Records) {
			t.Fatalf("re-decode has %d records, want %d", len(again.Records), len(dec.Records))
		}
		for i := range dec.Records {
			if again.Records[i] != dec.Records[i] {
				t.Fatalf("record %d changed: %+v -> %+v", i, dec.Records[i], again.Records[i])
			}
		}
		// Adapting must not panic either; errors are fine.
		dec.Slots()
	})
}
