package xtrace_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xtrace"
)

// The round-trip differential: exporting a captured workload to the
// external format and re-ingesting it — through either encoding — must
// produce bit-identical pipeline.Stats to the direct interpreter-backed
// run. This is the acceptance bar for the whole subsystem: the external
// front end is observationally equivalent to the native one.
func TestRoundTripBitIdentical(t *testing.T) {
	const budget = 40_000
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}

	// Direct run: interpreter -> capture -> engine.
	direct, err := sim.RunWorkload(context.Background(), p, pipeline.ModeRePLayOpt,
		sim.Options{MaxInsts: budget})
	if err != nil {
		t.Fatal(err)
	}

	// Export: capture budget+slack slots, intended budget in the header.
	ss, err := sim.CaptureSlotStream(p, 0, budget+sim.ReplaySlack)
	if err != nil {
		t.Fatal(err)
	}
	xt, err := xtrace.FromSlotStream(ss, budget)
	if err != nil {
		t.Fatal(err)
	}
	if got := xt.Header.Insts; got != budget {
		t.Fatalf("header insts = %d, want %d", got, budget)
	}

	for _, enc := range []struct {
		name  string
		write func(*bytes.Buffer) error
	}{
		{"binary", func(b *bytes.Buffer) error { return xtrace.WriteBinary(b, xt) }},
		{"ndjson", func(b *bytes.Buffer) error { return xtrace.WriteNDJSON(b, xt) }},
	} {
		t.Run(enc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := enc.write(&buf); err != nil {
				t.Fatal(err)
			}
			dec, err := xtrace.Decode(&buf, xtrace.Limits{})
			if err != nil {
				t.Fatal(err)
			}
			if !dec.Header.HasCode() {
				t.Fatal("decoded trace lost its code image")
			}
			slots, err := dec.Slots()
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.RunExternal(context.Background(), sim.ExternalRun{
				Name:        dec.Header.Name,
				Fingerprint: xtrace.TraceID(dec),
				Slots:       slots,
				Insts:       int(dec.Header.Insts),
			}, pipeline.ModeRePLayOpt, sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Stats, direct.Stats) {
				t.Errorf("external stats differ from direct run:\n external: %+v\n direct:   %+v",
					res.Stats, direct.Stats)
			}
		})
	}
}

// The adapted slot stream itself must reproduce the capture exactly:
// same PCs, successors, instructions, micro-op flows, and addresses.
func TestAdaptedSlotsMatchCapture(t *testing.T) {
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	ss, err := sim.CaptureSlotStream(p, 0, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.SlotsFromRecorded(ss)
	if err != nil {
		t.Fatal(err)
	}
	xt, err := xtrace.FromSlotStream(ss, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := xtrace.WriteBinary(&buf, xt); err != nil {
		t.Fatal(err)
	}
	dec, err := xtrace.Decode(&buf, xtrace.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec.Slots()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("adapted %d slots, capture has %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("slot %d differs:\n got:  %+v\n want: %+v", i, got[i], want[i])
		}
	}
}
