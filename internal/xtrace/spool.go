package xtrace

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Spool errors.
var (
	// ErrSpoolBudget reports a trace too large for the spool's byte
	// budget even with everything else evicted (the server maps this to
	// 413).
	ErrSpoolBudget = errors.New("xtrace: trace exceeds the spool byte budget")
	// ErrNotFound reports an unknown trace ID.
	ErrNotFound = errors.New("xtrace: no such trace")
)

// spoolExt is the on-disk extension of spooled traces
// (<content-id>.xut, canonical binary encoding).
const spoolExt = ".xut"

// Spool is a bounded, content-addressed disk store of uploaded traces.
// IDs are the SHA-256 of the canonical binary encoding — the same
// fingerprint discipline the run memo uses — so re-uploads deduplicate
// and a trace ID names exactly one stream of micro-ops forever. Least
// recently used traces are evicted when the byte budget is exceeded;
// pinned traces and the most recent trace are always retained.
type Spool struct {
	mu        sync.Mutex
	dir       string
	maxBytes  int64
	bytes     int64
	sizes     map[string]int64
	pins      map[string]int // eviction holds, keyed by ID
	order     []string       // front = least recently used
	evictions uint64
}

// OpenSpool opens (creating if needed) a spool rooted at dir with the
// given byte budget, re-indexing any traces a previous process left
// behind (oldest-modified first, so eviction order survives restarts).
func OpenSpool(dir string, maxBytes int64) (*Spool, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("xtrace: open spool: %w", err)
	}
	s := &Spool{dir: dir, maxBytes: maxBytes, sizes: map[string]int64{}, pins: map[string]int{}}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("xtrace: open spool: %w", err)
	}
	type old struct {
		id   string
		size int64
		mod  int64
	}
	var olds []old
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, spoolExt) {
			continue
		}
		id := strings.TrimSuffix(name, spoolExt)
		if !validID(id) {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		olds = append(olds, old{id: id, size: fi.Size(), mod: fi.ModTime().UnixNano()})
	}
	sort.Slice(olds, func(i, j int) bool { return olds[i].mod < olds[j].mod })
	for _, o := range olds {
		s.sizes[o.id] = o.size
		s.order = append(s.order, o.id)
		s.bytes += o.size
	}
	s.mu.Lock()
	s.evict()
	s.mu.Unlock()
	return s, nil
}

// validID reports whether id is a well-formed content ID (hex SHA-256),
// which also guarantees it is path-safe.
func validID(id string) bool {
	if len(id) != sha256.Size*2 {
		return false
	}
	_, err := hex.DecodeString(id)
	return err == nil
}

// TraceID returns the content ID of a trace: the hex SHA-256 of its
// canonical binary encoding.
func TraceID(t *Trace) string {
	sum := sha256.Sum256(CanonicalBytes(t))
	return hex.EncodeToString(sum[:])
}

// Put stores the trace, returning its content ID, its canonical size,
// and whether it was already present (a deduplicated re-upload). A
// trace larger than the whole budget fails with ErrSpoolBudget.
func (s *Spool) Put(t *Trace) (id string, size int64, dup bool, err error) {
	b := CanonicalBytes(t)
	sum := sha256.Sum256(b)
	id = hex.EncodeToString(sum[:])
	size = int64(len(b))

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sizes[id]; ok {
		s.touch(id)
		return id, size, true, nil
	}
	if size > s.maxBytes {
		return "", size, false, fmt.Errorf("%w: trace is %d bytes, budget %d",
			ErrSpoolBudget, size, s.maxBytes)
	}
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return "", size, false, fmt.Errorf("xtrace: spool write: %w", err)
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), s.path(id))
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return "", size, false, fmt.Errorf("xtrace: spool write: %w", werr)
	}
	s.sizes[id] = size
	s.order = append(s.order, id)
	s.bytes += size
	s.evict()
	return id, size, false, nil
}

// Get loads a spooled trace by content ID.
func (s *Spool) Get(id string) (*Trace, error) {
	if !validID(id) {
		return nil, fmt.Errorf("%w: malformed ID %q", ErrNotFound, id)
	}
	s.mu.Lock()
	_, ok := s.sizes[id]
	if ok {
		s.touch(id)
	}
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	f, err := os.Open(s.path(id))
	if err != nil {
		return nil, fmt.Errorf("%w: %s (spool file: %v)", ErrNotFound, id, err)
	}
	defer f.Close()
	return Decode(f, Limits{})
}

// Pin marks id as in use, protecting it from eviction until a matching
// Unpin, and reports whether the trace is present. Callers that hand
// out a trace ID for deferred work (a queued job) pin at admission so
// later uploads cannot evict the trace out from under the job.
func (s *Spool) Pin(id string) bool {
	if !validID(id) {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sizes[id]; !ok {
		return false
	}
	s.pins[id]++
	s.touch(id)
	return true
}

// Unpin releases one Pin hold on id. Extra unpins are ignored.
func (s *Spool) Unpin(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pins[id] <= 1 {
		delete(s.pins, id)
	} else {
		s.pins[id]--
	}
}

// Has reports whether the spool currently holds id.
func (s *Spool) Has(id string) bool {
	if !validID(id) {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.sizes[id]
	return ok
}

// List returns the spooled IDs, most recently used last.
func (s *Spool) List() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Stats reports the spool's entry count, byte occupancy, byte budget,
// and lifetime eviction count.
func (s *Spool) Stats() (entries int, bytes, maxBytes int64, evictions uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sizes), s.bytes, s.maxBytes, s.evictions
}

func (s *Spool) path(id string) string { return filepath.Join(s.dir, id+spoolExt) }

// touch moves id to the most-recent end. Caller holds s.mu.
func (s *Spool) touch(id string) {
	for i, k := range s.order {
		if k == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.order = append(s.order, id)
}

// evict removes least-recently-used traces while over budget, skipping
// pinned entries and always retaining the most recent one. Pins can
// leave the spool over budget; it drains back under once they release.
// Caller holds s.mu.
func (s *Spool) evict() {
	i := 0
	for s.bytes > s.maxBytes && i < len(s.order)-1 {
		old := s.order[i]
		if s.pins[old] > 0 {
			i++
			continue
		}
		s.order = append(s.order[:i], s.order[i+1:]...)
		s.bytes -= s.sizes[old]
		delete(s.sizes, old)
		os.Remove(s.path(old))
		s.evictions++
	}
}
