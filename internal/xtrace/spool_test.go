package xtrace

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func spoolTrace(eip uint32, n int) *Trace {
	t := &Trace{Header: Header{Version: FormatVersion, Name: "sp", Arch: "test"}}
	for i := 0; i < n; i++ {
		t.Records = append(t.Records, Record{EIP: eip + uint32(i)*4, Class: ClassExec, Flags: RecFirst})
	}
	return t
}

func TestSpoolPutGetDedup(t *testing.T) {
	s, err := OpenSpool(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	tr := spoolTrace(0x1000, 8)
	id, size, dup, err := s.Put(tr)
	if err != nil {
		t.Fatal(err)
	}
	if dup || size <= 0 || !validID(id) {
		t.Fatalf("put: id=%q size=%d dup=%v", id, size, dup)
	}
	if id != TraceID(tr) {
		t.Fatalf("put ID %s != TraceID %s", id, TraceID(tr))
	}
	if _, _, dup, _ := s.Put(tr); !dup {
		t.Fatal("re-upload not deduplicated")
	}
	got, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 8 || got.Header.Name != "sp" {
		t.Fatalf("got %+v", got.Header)
	}
	if _, err := s.Get(strings.Repeat("ab", 32)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown id: err = %v", err)
	}
	if _, err := s.Get("../escape"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("traversal id: err = %v", err)
	}
}

func TestSpoolBudgetAndEviction(t *testing.T) {
	one := spoolTrace(0x1000, 4)
	unit := int64(len(CanonicalBytes(one)))

	s, err := OpenSpool(t.TempDir(), unit*2+unit/2) // room for two
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 3)
	for i := range ids {
		id, _, _, err := s.Put(spoolTrace(uint32(0x1000*(i+1)), 4))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	entries, bytes, maxBytes, evictions := s.Stats()
	if entries != 2 || bytes > maxBytes || evictions != 1 {
		t.Fatalf("stats = %d entries, %d/%d bytes, %d evictions", entries, bytes, maxBytes, evictions)
	}
	if s.Has(ids[0]) {
		t.Fatal("LRU entry not evicted")
	}
	if !s.Has(ids[1]) || !s.Has(ids[2]) {
		t.Fatal("recent entries evicted")
	}

	// A single trace over the whole budget is refused, not spooled.
	tiny, err := OpenSpool(t.TempDir(), unit-1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := tiny.Put(one); !errors.Is(err, ErrSpoolBudget) {
		t.Fatalf("oversize put: err = %v, want ErrSpoolBudget", err)
	}
}

// A pinned trace survives budget pressure; eviction falls on the
// oldest unpinned entry instead, and releasing the pin makes the trace
// evictable again.
func TestSpoolPinBlocksEviction(t *testing.T) {
	one := spoolTrace(0x1000, 4)
	unit := int64(len(CanonicalBytes(one)))
	s, err := OpenSpool(t.TempDir(), unit*2+unit/2) // room for two
	if err != nil {
		t.Fatal(err)
	}
	idA, _, _, err := s.Put(spoolTrace(0x1000, 4))
	if err != nil {
		t.Fatal(err)
	}
	idB, _, _, err := s.Put(spoolTrace(0x2000, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Pin(idA) {
		t.Fatal("pin of a present trace failed")
	}
	if s.Pin(strings.Repeat("ab", 32)) {
		t.Fatal("pin of an absent trace succeeded")
	}
	idC, _, _, err := s.Put(spoolTrace(0x3000, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Has(idA) {
		t.Fatal("pinned trace was evicted")
	}
	if s.Has(idB) || !s.Has(idC) {
		t.Fatalf("eviction fell on the wrong entry: B=%v C=%v", s.Has(idB), s.Has(idC))
	}
	s.Unpin(idA)
	if _, _, _, err := s.Put(spoolTrace(0x4000, 4)); err != nil {
		t.Fatal(err)
	}
	if s.Has(idA) {
		t.Fatal("unpinned LRU trace survived eviction")
	}
}

func TestSpoolReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSpool(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	id, _, _, err := s.Put(spoolTrace(0x2000, 6))
	if err != nil {
		t.Fatal(err)
	}
	// Junk files are ignored on rescan.
	os.WriteFile(filepath.Join(dir, "junk.txt"), []byte("x"), 0o644)
	os.WriteFile(filepath.Join(dir, "nothex.xut"), []byte("x"), 0o644)

	re, err := OpenSpool(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !re.Has(id) {
		t.Fatal("reopened spool lost the trace")
	}
	got, err := re.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 6 {
		t.Fatalf("reloaded %d records, want 6", len(got.Records))
	}
	if entries, _, _, _ := re.Stats(); entries != 1 {
		t.Fatalf("reopened spool has %d entries", entries)
	}
}
