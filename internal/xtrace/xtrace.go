// Package xtrace defines the external micro-op trace format: the
// versioned interchange file that opens the simulator and the replayd
// service to traces produced outside our own IA-32 interpreter.
//
// The record is the Sniper-style lightweight dynamic micro-op: an
// instruction pointer, an operation class (exec, load, store, branch,
// sync), the memory address and access size for memory operations, and
// a taken bit for control transfers. Records are grouped into
// macro-instructions by a first-of-instruction flag, so one x86
// instruction that cracks into three micro-ops occupies three
// consecutive records sharing an EIP.
//
// Two encodings carry the same model:
//
//   - length-prefixed binary ("xuop" magic), compact and fast, the
//     canonical form used for content addressing, and
//   - NDJSON (one JSON object per line, header first), easy to emit
//     from scripts and foreign tools.
//
// A trace that carries its IA-32 code image (the exporter's round-trip
// mode) replays bit-identically: every slot is re-decoded and
// re-translated from the code bytes, exactly like the on-disk
// slot-stream captures. A trace without a code image — the
// bring-your-own-trace case — is adapted by synthesizing a canonical
// micro-op flow per record class, which the pipeline, frame cache, and
// optimizer consume unmodified (the timing model never evaluates
// micro-op values; control divergence is detected by PC comparison).
package xtrace

import (
	"errors"
	"fmt"
)

// FormatVersion is the only format version this package reads/writes.
const FormatVersion = 1

// Magic identifies a binary external uop trace.
var Magic = [4]byte{'x', 'u', 'o', 'p'}

// ArchIA32 marks a trace whose EIPs index an embedded IA-32 code image;
// such traces are re-decoded instead of synthesized. Any other arch
// string is accepted and adapted generically.
const ArchIA32 = "ia32"

// Header flag bits.
const (
	// FlagHasCode marks a trace that embeds its code image (base +
	// bytes) for exact re-decoding.
	FlagHasCode = 1 << 0
	// FlagPadded marks an exported trace that carries slack records
	// beyond the intended instruction budget (so a replayed engine never
	// exhausts the stream mid-run).
	FlagPadded = 1 << 1
)

// Class is the operation class of one micro-op record.
type Class uint8

// Record operation classes.
const (
	ClassExec Class = iota
	ClassLoad
	ClassStore
	ClassBranch
	ClassSync
	numClasses
)

var classNames = [numClasses]string{"exec", "load", "store", "branch", "sync"}

func (c Class) String() string {
	if c < numClasses {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ParseClass maps a class name to its Class.
func ParseClass(s string) (Class, error) {
	for i, n := range classNames {
		if s == n {
			return Class(i), nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrBadClass, s)
}

// Record flag bits.
const (
	// RecTaken marks a control transfer that was taken (set on the last
	// record of the transferring instruction).
	RecTaken = 1 << 0
	// RecFirst marks the first micro-op of a macro-instruction. A trace
	// where every record sets it is a plain one-uop-per-instruction
	// stream.
	RecFirst = 1 << 1
	// RecHasAddr marks a record that carries a memory address and size.
	RecHasAddr = 1 << 2
	// RecEOS marks the end-of-stream sentinel: its EIP is the successor
	// of the final instruction (the PC execution would fetch next). It
	// carries no micro-op and is optional.
	RecEOS = 1 << 3
)

// Record is one dynamic micro-op of the external trace.
type Record struct {
	EIP   uint32
	Class Class
	Flags uint8
	Addr  uint32 // valid when Flags&RecHasAddr != 0
	Size  uint8  // memory access size in bytes (0 when no address)
}

// Taken reports the record's taken bit.
func (r Record) Taken() bool { return r.Flags&RecTaken != 0 }

// First reports whether the record begins a macro-instruction.
func (r Record) First() bool { return r.Flags&RecFirst != 0 }

// HasAddr reports whether the record carries a memory address.
func (r Record) HasAddr() bool { return r.Flags&RecHasAddr != 0 }

// Header describes the trace stream that follows it.
type Header struct {
	Version uint32
	// Name labels the trace (workload name for exports; free-form).
	Name string
	// Arch names the ISA the EIPs belong to. ArchIA32 plus FlagHasCode
	// enables exact re-decoding; anything else is adapted generically.
	Arch string
	// Flags is a bitmask of FlagHasCode/FlagPadded.
	Flags uint32
	// UOps is the number of micro-op records in the stream (the EOS
	// sentinel excluded). Zero in hand-written NDJSON means "unknown";
	// binary headers always carry the exact count.
	UOps uint64
	// Insts is the intended x86 instruction budget of the trace: the
	// number of instructions a simulator run should consume (exports pad
	// beyond it, see FlagPadded). Zero means "use the whole stream".
	Insts uint32
}

// HasCode reports whether the trace embeds a code image.
func (h Header) HasCode() bool { return h.Flags&FlagHasCode != 0 }

// Trace is one fully decoded external trace.
type Trace struct {
	Header   Header
	CodeBase uint32
	Code     []byte
	Records  []Record
	// FinalPC is the EOS sentinel's successor PC; HasFinal reports
	// whether the stream carried one.
	FinalPC  uint32
	HasFinal bool
}

// Insts counts the macro-instructions of the trace (records flagged
// RecFirst; a trace with no first flags at all is one-uop-per-inst by
// convention, handled at decode time).
func (t *Trace) Insts() int {
	n := 0
	for i := range t.Records {
		if t.Records[i].First() {
			n++
		}
	}
	return n
}

// Typed decode failures. Every decoder error wraps exactly one of
// these, so callers can map failures to HTTP statuses or CLI messages
// without string matching.
var (
	// ErrBadMagic reports a stream that is neither binary ("xuop") nor
	// NDJSON xtrace.
	ErrBadMagic = errors.New("xtrace: bad magic (not an external uop trace)")
	// ErrBadVersion reports an unsupported format_version.
	ErrBadVersion = errors.New("xtrace: unsupported format version")
	// ErrBadClass reports an unknown operation class.
	ErrBadClass = errors.New("xtrace: unknown op class")
	// ErrTruncated reports a stream that ended mid-header or mid-record.
	ErrTruncated = errors.New("xtrace: truncated stream")
	// ErrMalformed reports a structurally invalid header or record.
	ErrMalformed = errors.New("xtrace: malformed stream")
	// ErrLimit reports a stream that exceeds a decode limit (record
	// count, stream bytes, record length, or code image size).
	ErrLimit = errors.New("xtrace: stream exceeds decode limit")
	// ErrInconsistent reports a trace whose records contradict their
	// code image (wrong micro-op count for an instruction, EIP outside
	// the image, mid-instruction EIP change).
	ErrInconsistent = errors.New("xtrace: records inconsistent with code image")
)

// Limits bounds a decode; the zero value means DefaultLimits.
type Limits struct {
	// MaxRecords caps the micro-op record count.
	MaxRecords uint64
	// MaxBytes caps the encoded stream size consumed from the reader.
	MaxBytes int64
	// MaxCodeBytes caps the embedded code image.
	MaxCodeBytes int
}

// DefaultLimits are generous offline-tool bounds; servers should set
// tighter ones.
var DefaultLimits = Limits{
	MaxRecords:   64 << 20, // 64M uops
	MaxBytes:     1 << 30,  // 1 GiB encoded
	MaxCodeBytes: 16 << 20, // 16 MiB code image
}

func (l Limits) withDefaults() Limits {
	if l.MaxRecords == 0 {
		l.MaxRecords = DefaultLimits.MaxRecords
	}
	if l.MaxBytes == 0 {
		l.MaxBytes = DefaultLimits.MaxBytes
	}
	if l.MaxCodeBytes == 0 {
		l.MaxCodeBytes = DefaultLimits.MaxCodeBytes
	}
	return l
}

// maxRecLen bounds the length prefix of one binary record: current
// records are at most 11 payload bytes; the slack admits future fields
// while still rejecting garbage prefixes early.
const maxRecLen = 64

// MinRecordBytes is the smallest encoded size of one record in either
// encoding (binary: one length byte plus a 6-byte payload; NDJSON lines
// are larger). It lets callers derive a sound record-count cap from a
// byte budget: a stream of B bytes carries at most B/MinRecordBytes
// records.
const MinRecordBytes = 7

// maxNameLen and maxArchLen bound the header strings.
const (
	maxNameLen = 256
	maxArchLen = 16
)
