package xtrace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"runtime"
	"strings"
	"testing"
)

// tinyTrace builds a small synthetic (no code image) trace.
func tinyTrace() *Trace {
	return &Trace{
		Header: Header{Version: FormatVersion, Name: "tiny", Arch: "test"},
		Records: []Record{
			{EIP: 0x1000, Class: ClassExec, Flags: RecFirst},
			{EIP: 0x1002, Class: ClassLoad, Flags: RecFirst | RecHasAddr, Addr: 0x8000, Size: 4},
			{EIP: 0x1005, Class: ClassBranch, Flags: RecFirst | RecTaken},
			{EIP: 0x1000, Class: ClassExec, Flags: RecFirst},
		},
		FinalPC:  0x1002,
		HasFinal: true,
	}
}

func encodeBinary(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := tinyTrace()
	dec, err := Decode(bytes.NewReader(encodeBinary(t, tr)), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Header.Name != "tiny" || dec.Header.Arch != "test" {
		t.Errorf("header = %+v", dec.Header)
	}
	if len(dec.Records) != 4 {
		t.Fatalf("decoded %d records, want 4", len(dec.Records))
	}
	if !dec.HasFinal || dec.FinalPC != 0x1002 {
		t.Errorf("final = %v %#x", dec.HasFinal, dec.FinalPC)
	}
	r := dec.Records[1]
	if !r.HasAddr() || r.Addr != 0x8000 || r.Size != 4 || r.Class != ClassLoad {
		t.Errorf("record 1 = %+v", r)
	}
	if !dec.Records[2].Taken() {
		t.Error("record 2 lost its taken bit")
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	tr := tinyTrace()
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(&buf, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Records) != 4 || !dec.HasFinal || dec.FinalPC != 0x1002 {
		t.Fatalf("decoded %d records, final %v %#x", len(dec.Records), dec.HasFinal, dec.FinalPC)
	}
	for i := range tr.Records {
		if dec.Records[i] != tr.Records[i] {
			t.Errorf("record %d = %+v, want %+v", i, dec.Records[i], tr.Records[i])
		}
	}
}

// Hand-written NDJSON: minimal lines, "first" defaulting, class words.
func TestNDJSONHandWritten(t *testing.T) {
	src := `{"magic":"xuop","version":1,"name":"hand","arch":"arm"}
{"eip":4096,"class":"exec"}
{"eip":4100,"class":"load","addr":32768,"size":8}
{"eip":4104,"class":"branch","taken":true}
{"eip":4096,"eos":true}
`
	dec, err := Decode(strings.NewReader(src), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Records) != 3 {
		t.Fatalf("decoded %d records, want 3", len(dec.Records))
	}
	for i, r := range dec.Records {
		if !r.First() {
			t.Errorf("record %d: first should default to true", i)
		}
	}
	if r := dec.Records[1]; !r.HasAddr() || r.Addr != 32768 || r.Size != 8 {
		t.Errorf("record 1 = %+v", r)
	}
	slots, err := dec.Slots()
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 3 {
		t.Fatalf("adapted %d slots, want 3", len(slots))
	}
	// Non-taken fallthrough fixes Len; NextPC relations must encode the
	// taken bits (slot 2 was taken).
	if slots[0].NextPC != slots[0].PC+uint32(slots[0].Inst.Len) {
		t.Errorf("slot 0 reads as taken: %+v", slots[0])
	}
	if slots[2].NextPC == slots[2].PC+uint32(slots[2].Inst.Len) {
		t.Errorf("slot 2 lost its taken bit: %+v", slots[2])
	}
	if len(slots[1].MemAddrs) != 1 || slots[1].MemAddrs[0] != 32768 {
		t.Errorf("slot 1 addrs = %v", slots[1].MemAddrs)
	}
}

func TestDecodeTypedErrors(t *testing.T) {
	good := encodeBinary(t, tinyTrace())

	tests := []struct {
		name string
		in   []byte
		lim  Limits
		want error
	}{
		{"empty", nil, Limits{}, ErrTruncated},
		{"bad magic", []byte("nope"), Limits{}, ErrBadMagic},
		{"bad magic xu", []byte("xu__garbage_____"), Limits{}, ErrBadMagic},
		{"bad version", func() []byte {
			b := append([]byte(nil), good...)
			binary.LittleEndian.PutUint32(b[4:], 99)
			return b
		}(), Limits{}, ErrBadVersion},
		{"truncated header", good[:6], Limits{}, ErrTruncated},
		{"truncated record", good[:len(good)-3], Limits{}, ErrTruncated},
		{"oversize stream", good, Limits{MaxBytes: 16}, ErrLimit},
		{"record cap", good, Limits{MaxRecords: 2}, ErrLimit},
		{"bad class", func() []byte {
			tr := tinyTrace()
			tr.Records[0].Class = 200
			return encodeBinary(t, tr)
		}(), Limits{}, ErrBadClass},
		{"json bad magic", []byte(`{"magic":"nope","version":1}` + "\n"), Limits{}, ErrBadMagic},
		{"json bad version", []byte(`{"magic":"xuop","version":7}` + "\n"), Limits{}, ErrBadVersion},
		{"json bad class", []byte(`{"magic":"xuop","version":1}` + "\n" +
			`{"eip":1,"class":"frobnicate"}` + "\n"), Limits{}, ErrBadClass},
		{"json no eip", []byte(`{"magic":"xuop","version":1}` + "\n" +
			`{"class":"exec"}` + "\n"), Limits{}, ErrMalformed},
		{"json garbage line", []byte(`{"magic":"xuop","version":1}` + "\n" + `{{{` + "\n"), Limits{}, ErrMalformed},
		{"no records", []byte(`{"magic":"xuop","version":1}` + "\n"), Limits{}, ErrMalformed},
		{"record after eos", func() []byte {
			tr := tinyTrace()
			var buf bytes.Buffer
			WriteBinary(&buf, tr)
			b := buf.Bytes()
			// Append one more record after the EOS sentinel.
			return append(b, 6, RecFirst, byte(ClassExec), 0, 0x10, 0, 0)
		}(), Limits{}, ErrMalformed},
		{"uop count mismatch", func() []byte {
			b := append([]byte(nil), good...)
			// UOps u64 lives after magic(4)+ver(4)+nameLen(2)+name(4)+archLen(1)+arch(4)+flags(4).
			off := 4 + 4 + 2 + len("tiny") + 1 + len("test") + 4
			binary.LittleEndian.PutUint64(b[off:], 99)
			return b
		}(), Limits{}, ErrMalformed},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(bytes.NewReader(tc.in), tc.lim)
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

// A stream of exactly MaxBytes is within the budget and must decode;
// one byte less and the cap is genuinely exceeded.
func TestDecodeExactByteBudget(t *testing.T) {
	for _, enc := range []struct {
		name string
		in   []byte
	}{
		{"binary", encodeBinary(t, tinyTrace())},
		{"ndjson", func() []byte {
			var buf bytes.Buffer
			if err := WriteNDJSON(&buf, tinyTrace()); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}()},
	} {
		t.Run(enc.name, func(t *testing.T) {
			if _, err := Decode(bytes.NewReader(enc.in), Limits{MaxBytes: int64(len(enc.in))}); err != nil {
				t.Fatalf("exact-budget stream rejected: %v", err)
			}
			if _, err := Decode(bytes.NewReader(enc.in), Limits{MaxBytes: int64(len(enc.in)) - 1}); !errors.Is(err, ErrLimit) {
				t.Fatalf("over-budget stream: err = %v, want ErrLimit", err)
			}
		})
	}
}

// A header that declares a huge uop count must not command a matching
// preallocation: the byte budget bounds what the stream could possibly
// carry, and so must bound the allocation.
func TestDecodePreallocBounded(t *testing.T) {
	b := encodeBinary(t, tinyTrace())
	// Patch the header count to 8M uops (would be 128 MiB of Records).
	off := 4 + 4 + 2 + len("tiny") + 1 + len("test") + 4
	binary.LittleEndian.PutUint64(b[off:], 8<<20)
	lim := Limits{MaxBytes: 4096, MaxRecords: 16 << 20}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	_, err := Decode(bytes.NewReader(b), lim)
	runtime.ReadMemStats(&after)
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed (count/stream mismatch)", err)
	}
	if alloc := after.TotalAlloc - before.TotalAlloc; alloc > 1<<20 {
		t.Fatalf("decode of a 4 KiB budget allocated %d bytes", alloc)
	}
}

// One overlong NDJSON line is rejected as soon as it crosses the line
// cap, not after the whole line has been buffered.
func TestNDJSONLineCap(t *testing.T) {
	lim := Limits{MaxCodeBytes: 16, MaxBytes: 1 << 20} // line cap ~4 KiB
	line := `{"magic":"xuop","version":1,"pad":"` + strings.Repeat("a", 16<<10) + `"}` + "\n"
	if _, err := Decode(strings.NewReader(line), lim); !errors.Is(err, ErrLimit) {
		t.Fatalf("oversize line: err = %v, want ErrLimit", err)
	}
}

func TestDecodeCodeLimits(t *testing.T) {
	tr := tinyTrace()
	tr.Header.Arch = ArchIA32
	tr.CodeBase = 0x1000
	tr.Code = bytes.Repeat([]byte{0x90}, 1024)
	b := encodeBinary(t, tr)
	if _, err := Decode(bytes.NewReader(b), Limits{MaxCodeBytes: 512, MaxBytes: 1 << 20}); !errors.Is(err, ErrLimit) {
		t.Fatalf("code over cap: err = %v, want ErrLimit", err)
	}
	dec, err := Decode(bytes.NewReader(b), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Header.HasCode() || len(dec.Code) != 1024 || dec.CodeBase != 0x1000 {
		t.Fatalf("code image lost: %+v", dec.Header)
	}
}

// Mid-instruction EIP changes are rejected by the adapter.
func TestGroupsRejectEIPChange(t *testing.T) {
	tr := &Trace{
		Header: Header{Version: FormatVersion},
		Records: []Record{
			{EIP: 0x10, Class: ClassExec, Flags: RecFirst},
			{EIP: 0x14, Class: ClassExec}, // continues 0x10's group
		},
	}
	if _, err := tr.Slots(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
}

// A code-carrying trace whose record grouping disagrees with the
// translation of its code image is rejected, per ErrInconsistent's
// contract, instead of silently running with misaligned MemAddrs.
func TestCodeSlotsInconsistent(t *testing.T) {
	base := Trace{
		Header:   Header{Version: FormatVersion, Arch: ArchIA32, Flags: FlagHasCode},
		CodeBase: 0x1000,
		Code:     []byte{0x90}, // NOP: cracks into exactly one micro-op
	}

	twoRec := base
	twoRec.Records = []Record{
		{EIP: 0x1000, Class: ClassExec, Flags: RecFirst},
		{EIP: 0x1000, Class: ClassExec},
	}
	if _, err := twoRec.Slots(); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("uop count mismatch: err = %v, want ErrInconsistent", err)
	}

	addrRec := base
	addrRec.Records = []Record{
		{EIP: 0x1000, Class: ClassLoad, Flags: RecFirst | RecHasAddr, Addr: 0x8000, Size: 4},
	}
	if _, err := addrRec.Slots(); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("addr count mismatch: err = %v, want ErrInconsistent", err)
	}

	ok := base
	ok.Records = []Record{{EIP: 0x1000, Class: ClassSync, Flags: RecFirst}}
	if _, err := ok.Slots(); err != nil {
		t.Fatalf("consistent trace rejected: %v", err)
	}
}

// Synthesized decode is per-PC static: repeated visits to an EIP share
// one instruction identity, which frame-cache replay relies on.
func TestSynthDeterministicPerPC(t *testing.T) {
	tr := tinyTrace()
	slots, err := tr.Slots()
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 4 {
		t.Fatalf("adapted %d slots, want 4", len(slots))
	}
	a, b := slots[0], slots[3] // both EIP 0x1000
	if a.Inst != b.Inst {
		t.Errorf("same PC decoded differently: %+v vs %+v", a.Inst, b.Inst)
	}
	if len(a.UOps) != len(b.UOps) {
		t.Fatalf("uop flows differ in length")
	}
	for i := range a.UOps {
		if a.UOps[i] != b.UOps[i] {
			t.Errorf("uop %d differs: %+v vs %+v", i, a.UOps[i], b.UOps[i])
		}
	}
	// Taken relation: slot 2 (branch, taken) must not read as fallthrough.
	s := slots[2]
	if s.NextPC == s.PC+uint32(s.Inst.Len) {
		t.Errorf("taken branch reads as fallthrough: %+v", s)
	}
}

func TestTraceIDStable(t *testing.T) {
	a, b := TraceID(tinyTrace()), TraceID(tinyTrace())
	if a != b {
		t.Fatalf("same trace hashed differently: %s vs %s", a, b)
	}
	mut := tinyTrace()
	mut.Records[0].EIP++
	if TraceID(mut) == a {
		t.Fatal("different traces share an ID")
	}
}
