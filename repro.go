// Package repro is the public API of the reproduction of "Dynamic
// Optimization of Micro-Operations" (Slechta et al., HPCA 2003): a
// complete rePLay-style x86 micro-operation dynamic optimization system —
// IA-32 decode, micro-op translation, frame construction, the
// seven-optimization engine, and a cycle-level 8-wide timing model —
// together with the synthetic workload suite and the experiment harness
// that regenerates every table and figure of the paper's evaluation.
//
// Quick start:
//
//	r, err := repro.Run("bzip2", repro.RPO)
//	fmt.Printf("IPC %.2f, micro-ops removed %.0f%%\n", r.IPC, 100*r.UOpReduction)
//
// The four processor configurations of the paper's Figure 6 are IC (a
// 64kB instruction cache), TC (trace cache), RP (basic rePLay) and RPO
// (rePLay with the optimizing engine).
package repro

import (
	"context"
	"fmt"

	"repro/internal/opt"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Mode is a processor configuration from Figure 6.
type Mode = pipeline.Mode

// The four evaluated configurations.
const (
	IC  = pipeline.ModeICache
	TC  = pipeline.ModeTraceCache
	RP  = pipeline.ModeRePLay
	RPO = pipeline.ModeRePLayOpt
)

// Scope selects the optimization scope (Section 3 / Figure 9).
type Scope = opt.Scope

// Optimization scopes.
const (
	IntraBlock = opt.ScopeIntraBlock
	InterBlock = opt.ScopeInterBlock
	FrameLevel = opt.ScopeFrame
)

// WorkloadInfo describes one application of the workload set (Table 1).
type WorkloadInfo struct {
	Name   string
	Class  string // "SPECint", "Business" or "Content"
	Traces int    // hot-spot trace count
	Insts  int    // per-trace x86 instruction budget (scaled)
}

// Workloads lists the 14 applications of the experimental workload.
func Workloads() []WorkloadInfo {
	out := make([]WorkloadInfo, 0, len(workload.Profiles))
	for _, p := range workload.Profiles {
		out = append(out, WorkloadInfo{Name: p.Name, Class: p.Class, Traces: p.Traces, Insts: p.XInsts})
	}
	return out
}

// Result summarizes one workload simulation.
type Result struct {
	Workload string
	Mode     Mode

	IPC           float64 // retired x86 instructions per cycle
	Cycles        uint64
	X86Retired    uint64
	UOpReduction  float64 // fraction of dynamic micro-ops removed
	LoadReduction float64 // fraction of dynamic loads removed
	FrameCoverage float64 // fraction of micro-ops fetched from frames
	AssertRate    float64 // fraction of frame fetches that aborted

	// CycleBins is the fetch-cycle classification of Figures 7-8
	// (assert, mispred, miss, stall, wait, frame, icache).
	CycleBins map[string]uint64
}

// Option configures a Run.
type Option func(*runConfig)

type runConfig struct {
	opts sim.Options
}

// WithInstructionBudget overrides the per-trace x86 instruction budget.
func WithInstructionBudget(n int) Option {
	return func(c *runConfig) { c.opts.MaxInsts = n }
}

// WithScope sets the optimization scope (frame-level by default).
func WithScope(s Scope) Option {
	return func(c *runConfig) {
		c.chain(func(cfg *pipeline.Config) { cfg.OptScope = s })
	}
}

// WithoutOptimization disables individual optimizations by name:
// "asst", "cp", "cse", "nop", "ra", "sf", "spec".
func WithoutOptimization(names ...string) Option {
	return func(c *runConfig) {
		c.chain(func(cfg *pipeline.Config) {
			for _, n := range names {
				switch n {
				case "asst":
					cfg.OptOptions.Assert = false
				case "cp":
					cfg.OptOptions.CP = false
				case "cse":
					cfg.OptOptions.CSE = false
				case "nop":
					cfg.OptOptions.NOP = false
				case "ra":
					cfg.OptOptions.RA = false
				case "sf":
					cfg.OptOptions.SF = false
				case "spec":
					cfg.OptOptions.Speculative = false
				}
			}
		})
	}
}

// WithRescheduling enables the Section 4 position-field rescheduling:
// the optimizer emits frames in critical-path-first issue order.
func WithRescheduling() Option {
	return func(c *runConfig) {
		c.chain(func(cfg *pipeline.Config) { cfg.OptReschedule = true })
	}
}

// WithConfig applies an arbitrary edit to the Table 2 processor
// configuration before the run (frame size limits, optimizer latency,
// cache sizes, ...).
func WithConfig(mod func(*pipeline.Config)) Option {
	return func(c *runConfig) { c.chain(mod) }
}

func (c *runConfig) chain(mod func(*pipeline.Config)) {
	prev := c.opts.ConfigMod
	c.opts.ConfigMod = func(cfg *pipeline.Config) {
		if prev != nil {
			prev(cfg)
		}
		mod(cfg)
	}
}

// Run simulates one workload under the given configuration and returns
// its summary.
func Run(name string, mode Mode, options ...Option) (Result, error) {
	p, err := workload.ByName(name)
	if err != nil {
		return Result{}, err
	}
	var rc runConfig
	for _, o := range options {
		o(&rc)
	}
	r, err := sim.RunWorkload(context.Background(), p, mode, rc.opts)
	if err != nil {
		return Result{}, err
	}
	return resultOf(r), nil
}

func resultOf(r sim.Result) Result {
	s := r.Stats
	out := Result{
		Workload:      r.Workload,
		Mode:          r.Mode,
		IPC:           r.IPC(),
		Cycles:        s.Cycles,
		X86Retired:    s.X86Retired,
		UOpReduction:  s.UOpReduction(),
		LoadReduction: s.LoadReduction(),
		FrameCoverage: s.FrameCoverage(),
		CycleBins:     make(map[string]uint64, int(pipeline.NumBins)),
	}
	if s.FrameFetches > 0 {
		out.AssertRate = float64(s.FrameAborts) / float64(s.FrameFetches)
	}
	for b := pipeline.Bin(0); b < pipeline.NumBins; b++ {
		out.CycleBins[b.String()] = s.Bins[b]
	}
	return out
}

// ProcessorConfig returns the Table 2 configuration for a mode, for
// inspection or as a base for WithConfig edits.
func ProcessorConfig(mode Mode) pipeline.Config { return pipeline.DefaultConfig(mode) }

// ByClass returns the profile names of one workload class, or all names
// for "".
func ByClass(class string) []string {
	var names []string
	for _, p := range workload.Profiles {
		if class == "" || p.Class == class {
			names = append(names, p.Name)
		}
	}
	return names
}

// Validate checks that a workload name exists.
func Validate(name string) error {
	_, err := workload.ByName(name)
	if err != nil {
		return fmt.Errorf("repro: %w", err)
	}
	return nil
}
