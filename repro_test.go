package repro

import "testing"

func TestWorkloadsCatalog(t *testing.T) {
	ws := Workloads()
	if len(ws) != 14 {
		t.Fatalf("workloads = %d, want 14", len(ws))
	}
	classes := map[string]int{}
	for _, w := range ws {
		classes[w.Class]++
		if err := Validate(w.Name); err != nil {
			t.Errorf("catalog entry %q fails Validate: %v", w.Name, err)
		}
	}
	if classes["SPECint"] != 7 {
		t.Errorf("SPECint = %d, want 7", classes["SPECint"])
	}
	if err := Validate("quake"); err == nil {
		t.Error("unknown workload validated")
	}
}

func TestRunBasic(t *testing.T) {
	r, err := Run("crafty", RPO, WithInstructionBudget(25_000))
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC <= 0 || r.IPC > 8 {
		t.Errorf("IPC = %.2f", r.IPC)
	}
	if r.UOpReduction <= 0 {
		t.Errorf("no micro-op reduction: %.3f", r.UOpReduction)
	}
	var cycles uint64
	for _, v := range r.CycleBins {
		cycles += v
	}
	if cycles != r.Cycles {
		t.Errorf("bins %d != cycles %d", cycles, r.Cycles)
	}
}

func TestRunOptionsDisableOptimizations(t *testing.T) {
	all, err := Run("crafty", RPO, WithInstructionBudget(25_000))
	if err != nil {
		t.Fatal(err)
	}
	none, err := Run("crafty", RPO, WithInstructionBudget(25_000),
		WithoutOptimization("asst", "cp", "cse", "nop", "ra", "sf"))
	if err != nil {
		t.Fatal(err)
	}
	if none.UOpReduction >= all.UOpReduction {
		t.Errorf("disabling everything kept reduction: %.3f vs %.3f",
			none.UOpReduction, all.UOpReduction)
	}
}

func TestRunScope(t *testing.T) {
	frame, err := Run("crafty", RPO, WithInstructionBudget(25_000))
	if err != nil {
		t.Fatal(err)
	}
	block, err := Run("crafty", RPO, WithInstructionBudget(25_000), WithScope(IntraBlock))
	if err != nil {
		t.Fatal(err)
	}
	if block.UOpReduction >= frame.UOpReduction {
		t.Errorf("block-scope reduction %.3f >= frame-scope %.3f",
			block.UOpReduction, frame.UOpReduction)
	}
}

func TestRunCustomSpec(t *testing.T) {
	spec := WorkloadSpec{Seed: 7, Insts: 20_000, LoadRedundancy: 0.5}
	r, err := RunCustom(spec, RPO)
	if err != nil {
		t.Fatal(err)
	}
	if r.Workload != "custom" {
		t.Errorf("default name = %q", r.Workload)
	}
	if r.LoadReduction <= 0 {
		t.Errorf("redundant custom workload removed no loads")
	}
}

func TestProcessorConfigPerMode(t *testing.T) {
	if ProcessorConfig(IC).ICacheBytes != 64<<10 {
		t.Error("IC config should have the 64kB ICache")
	}
	if ProcessorConfig(RPO).ICacheBytes != 8<<10 {
		t.Error("RPO config should have the 8kB ICache")
	}
}

func TestByClass(t *testing.T) {
	if got := len(ByClass("SPECint")); got != 7 {
		t.Errorf("SPECint names = %d", got)
	}
	if got := len(ByClass("")); got != 14 {
		t.Errorf("all names = %d", got)
	}
}

// TestFigure6Ordering: the paper's headline structural claim on a subset —
// the optimizing configuration outperforms basic rePLay.
func TestFigure6Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	rows, err := Figure6(ExpOptions{Workloads: []string{"vortex"}, InstructionBudget: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.IPC[3] <= r.IPC[2] {
		t.Errorf("RPO %.2f <= RP %.2f on vortex", r.IPC[3], r.IPC[2])
	}
}
